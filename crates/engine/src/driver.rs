//! The streaming driver: the per-heartbeat loop that batches, partitions,
//! schedules and executes micro-batches on the simulated cluster, maintaining
//! the pipelined overlap of batching and processing (Fig. 2).
//!
//! All scheduling runs on virtual time. Batch `x` is accumulated during its
//! interval and its processing starts at its heartbeat — unless the pipeline
//! is still busy with earlier batches, in which case it queues, exactly the
//! instability mechanism of §1. End-to-end latency is `batch interval +
//! queue delay + processing time` (§1).
//!
//! # The batch-state machine
//!
//! Each batch advances through four states: **buffering** (its interval is
//! still accumulating tuples), **partitioned** (ingested, replicated and
//! planned — a [`PreparedBatch`]), **executing** (map/reduce in flight on
//! the backend), and **committed** (window state, checkpoints, virtual-time
//! scheduling and trace spans applied). [`EngineConfig::pipeline_depth`]
//! bounds how many batches may sit past *buffering* at once: at the default
//! depth 1 the loop is the classic one-lifecycle-per-heartbeat sequence,
//! while at depth `d > 1` the driver prepares up to `d` batches ahead and —
//! on the distributed backend — dispatches their Map tasks eagerly, so
//! batch `N+1`'s ingest/partition/wire-transfer overlaps batch `N`'s
//! execution. **Commits are strictly sequential in batch order** regardless
//! of depth; every state mutation with cross-batch feedback (windows,
//! checkpoints, retention expiry, the virtual pipeline clock) happens only
//! at commit, which is what keeps outputs bit-identical to serial at every
//! depth.

use std::collections::{HashMap, VecDeque};

use prompt_core::batch::{MicroBatch, PartitionPlan};
use prompt_core::columnar::ColumnarPlan;
use prompt_core::metrics::PlanMetrics;
use prompt_core::partitioner::{PartitionPhases, Partitioner, PartitionerRegistry, Technique};
use prompt_core::reduce::{HashReduceAssigner, PromptReduceAllocator, ReduceAssigner};
use prompt_core::types::{Duration, Interval, Time, Tuple};

use crate::config::{Backend, EngineConfig, OverheadMode};
use crate::elasticity::{AutoScaler, Observation, ScaleAction};
use crate::job::{Job, JobSpec};
use crate::net::{DistributedOptions, DistributedRuntime, NetStats};
use crate::policy::{
    build_policy, BatchObservation, PartitionerPolicy, PolicyDecision, PolicySpec,
};
use crate::rebalance::{
    group_weights, imbalance_ratio, GroupRoutedAssigner, MigrationPlan, RebalanceObservation,
    RoutingTable, SharedRoutingTable,
};
use crate::recovery::{FaultPlan, NetFaultPlan, ReplicatedBatchStore};
use crate::source::TupleSource;
use crate::stage::{
    execute_batch_traced, execute_columnar_traced, times_from_stats, BatchOutput, StageTimes,
};
use crate::state::{restore, Checkpointer, KeyedStateStore, StateStats, StatefulOp};
use crate::straggler::StragglerPlan;
use crate::threaded::ThreadedExecutor;
use crate::trace::{Counter, StageKind, TraceEvent, TraceRecorder};
use crate::window::{WindowResult, WindowSpec, WindowState};

/// Per-batch execution record — the raw material of every figure in §7.2.
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Batch sequence number.
    pub seq: u64,
    /// Tuples in the batch.
    pub n_tuples: usize,
    /// Distinct keys in the batch.
    pub n_keys: usize,
    /// Map tasks (blocks) used for this batch.
    pub map_tasks: usize,
    /// Reduce tasks (buckets) used for this batch.
    pub reduce_tasks: usize,
    /// Raw partitioning overhead before early-release hiding.
    pub partition_overhead: Duration,
    /// Overhead that spilled past the early-release slack into processing.
    pub visible_overhead: Duration,
    /// Map stage makespan.
    pub map_stage: Duration,
    /// Reduce stage makespan.
    pub reduce_stage: Duration,
    /// Total processing time (visible overhead + stages).
    pub processing: Duration,
    /// Time the batch waited in the queue before processing started.
    pub queue_delay: Duration,
    /// End-to-end latency: interval + queue delay + processing.
    pub latency: Duration,
    /// `W = processing / batch_interval` — the elasticity signal.
    pub w: f64,
    /// Per-Map-task times (for straggler analysis).
    pub map_task_times: Vec<Duration>,
    /// Per-Reduce-task times (Fig. 13's latency distribution).
    pub reduce_task_times: Vec<Duration>,
    /// Partition-quality metrics of the plan (BSI/BCI/KSR/MPI).
    pub plan_metrics: PlanMetrics,
    /// The technique that partitioned this batch. Run-constant under a
    /// `Fixed` policy; per-batch under `Adaptive`/`Forced`. `None` only for
    /// engines built with [`StreamingEngine::with_parts`] (an explicit
    /// partitioner instance has no [`Technique`] name).
    pub technique: Option<Technique>,
}

/// The outcome of a streaming run.
#[derive(Debug, Default)]
pub struct RunResult {
    /// One record per batch.
    pub batches: Vec<BatchRecord>,
    /// Emitted window results (when a window was configured).
    pub windows: Vec<WindowResult>,
    /// Scale actions taken by the elasticity controller, by batch seq.
    pub scale_events: Vec<(u64, ScaleAction)>,
    /// Whether back-pressure (queue beyond the configured threshold)
    /// triggered at any point.
    pub backpressure: bool,
    /// Number of state-loss recoveries performed (fault injection, §8).
    /// Distributed worker losses count here too — each forces one
    /// recomputation from the replicated store.
    pub recoveries: u64,
    /// Workers the distributed backend declared lost (each also counts in
    /// [`RunResult::recoveries`]). Always 0 for in-process backends.
    pub worker_losses: u64,
    /// Driver-side wire totals when the run used
    /// [`Backend::Distributed`](crate::config::Backend::Distributed).
    pub net: Option<NetStats>,
    /// State-layer accounting when the keyed state store was active
    /// (checkpointing configured or a stateful operator attached).
    pub state: Option<StateStats>,
    /// Stateful-operator emissions, one per emitted window, when a
    /// [`StatefulOp`] was attached with [`StreamingEngine::with_stateful`].
    pub stateful: Vec<WindowResult>,
    /// The partitioner policy's per-batch decision log, in batch order.
    /// Empty under a `Fixed` policy (the decision is the constructor's).
    pub policy_decisions: Vec<PolicyDecision>,
    /// Key-group migration plans the rebalancer applied, by batch seq —
    /// each was applied before the named batch was assigned. Replaying
    /// this sequence through a `RebalanceSpec::Forced` run reproduces the
    /// run bit-identically (the differential-test oracle).
    pub migrations: Vec<(u64, MigrationPlan)>,
}

impl RunResult {
    /// Mean of a per-batch scalar over the second half of the run (warm-up
    /// excluded, matching the paper's methodology §7).
    pub fn steady_state_mean(&self, f: impl Fn(&BatchRecord) -> f64) -> f64 {
        let n = self.batches.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.batches[n / 2..];
        tail.iter().map(&f).sum::<f64>() / tail.len() as f64
    }

    /// Whether the run is stable: no back-pressure and the pipeline drained
    /// (last batch saw no queue delay beyond one interval).
    pub fn stable(&self) -> bool {
        if self.backpressure {
            return false;
        }
        match self.batches.last() {
            Some(b) => b.queue_delay.0 <= b.processing.0.max(1),
            None => true,
        }
    }

    /// A compact distribution summary of the run: tuples, latency and W
    /// statistics, recovery/back-pressure flags. The CLI and examples print
    /// this; tests assert on its fields.
    pub fn summary(&self, batch_interval: Duration) -> RunSummary {
        let latencies: Vec<f64> = self
            .batches
            .iter()
            .map(|b| b.latency.as_secs_f64())
            .collect();
        let ws: Vec<f64> = self.batches.iter().map(|b| b.w).collect();
        RunSummary {
            batches: self.batches.len(),
            tuples: self.batches.iter().map(|b| b.n_tuples).sum(),
            throughput: self.throughput(batch_interval),
            latency: crate::stats::summarize(&latencies),
            w: crate::stats::summarize(&ws),
            stable: self.stable(),
            backpressure: self.backpressure,
            recoveries: self.recoveries,
            scale_events: self.scale_events.len(),
        }
    }

    /// Total tuples processed per second of stream time — the throughput
    /// actually sustained.
    pub fn throughput(&self, batch_interval: Duration) -> f64 {
        let tuples: usize = self.batches.iter().map(|b| b.n_tuples).sum();
        let span = batch_interval.as_secs_f64() * self.batches.len() as f64;
        if span == 0.0 {
            0.0
        } else {
            tuples as f64 / span
        }
    }
}

/// Compact summary of a [`RunResult`] (see [`RunResult::summary`]).
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Batches executed.
    pub batches: usize,
    /// Total tuples processed.
    pub tuples: usize,
    /// Sustained throughput (tuples per second of stream time).
    pub throughput: f64,
    /// End-to-end latency distribution (seconds).
    pub latency: crate::stats::Summary,
    /// `W = processing / interval` distribution.
    pub w: crate::stats::Summary,
    /// Whether the run ended stable.
    pub stable: bool,
    /// Whether back-pressure triggered.
    pub backpressure: bool,
    /// State-loss recoveries performed.
    pub recoveries: u64,
    /// Elasticity actions taken.
    pub scale_events: usize,
}

impl std::fmt::Display for RunSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} batches, {} tuples ({:.0}/s) | latency mean {:.0} ms p95 {:.0} ms | \
             W mean {:.2} max {:.2} | stable: {}{}{}{}",
            self.batches,
            self.tuples,
            self.throughput,
            self.latency.mean * 1e3,
            self.latency.p95 * 1e3,
            self.w.mean,
            self.w.max,
            self.stable,
            if self.backpressure {
                " [backpressure]"
            } else {
                ""
            },
            if self.recoveries > 0 {
                " [recovered]"
            } else {
                ""
            },
            if self.scale_events > 0 {
                " [scaled]"
            } else {
                ""
            },
        )
    }
}

/// Which reduce-side assigner to pair with the batch partitioner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// Conventional hashing (what every baseline uses).
    Hash,
    /// Algorithm 3's Worst-Fit allocator (what Prompt uses).
    Prompt,
}

impl ReduceStrategy {
    /// The strategy the paper pairs with each batching technique.
    pub fn for_technique(t: Technique) -> ReduceStrategy {
        match t {
            Technique::Prompt | Technique::PromptPostSort => ReduceStrategy::Prompt,
            _ => ReduceStrategy::Hash,
        }
    }

    /// Instantiate the assigner with a shared routing seed.
    pub fn build_boxed(self, seed: u64) -> Box<dyn ReduceAssigner> {
        match self {
            ReduceStrategy::Hash => Box::new(HashReduceAssigner::new(seed)),
            ReduceStrategy::Prompt => Box::new(PromptReduceAllocator::new(seed)),
        }
    }
}

/// The per-technique strategy pool a non-`Fixed` policy hot-swaps between:
/// lazily built partitioners (one instance per technique, reused across
/// batches so stateful partitioners keep their cross-batch state) plus the
/// two reduce assigners. Each assigner persists across the whole run — the
/// Prompt allocator's task counter advances monotonically over every batch
/// it assigns, so handing a switched-back technique a fresh assigner would
/// break bit-identity with a forced-sequence run.
pub(crate) struct StrategySet {
    pub(crate) registry: PartitionerRegistry,
    hash_assigner: Box<dyn ReduceAssigner>,
    prompt_assigner: Box<dyn ReduceAssigner>,
}

impl StrategySet {
    pub(crate) fn new(seed: u64, shards: usize, threads: usize) -> StrategySet {
        StrategySet {
            registry: PartitionerRegistry::with_parallelism(seed, shards, threads),
            hash_assigner: ReduceStrategy::Hash.build_boxed(seed),
            prompt_assigner: ReduceStrategy::Prompt.build_boxed(seed),
        }
    }

    /// Both halves of the strategy for `t`, resolved together.
    pub(crate) fn pair_mut(
        &mut self,
        t: Technique,
    ) -> (&mut dyn Partitioner, &mut dyn ReduceAssigner) {
        let assigner = match ReduceStrategy::for_technique(t) {
            ReduceStrategy::Hash => self.hash_assigner.as_mut(),
            ReduceStrategy::Prompt => self.prompt_assigner.as_mut(),
        };
        (self.registry.get_or_build(t), assigner)
    }
}

/// The (partitioner, assigner) pair a batch runs with: the policy's
/// strategy set when a per-batch technique was selected, else the engine's
/// run-constant parts.
fn resolve_pair<'a>(
    base_partitioner: &'a mut Box<dyn Partitioner>,
    base_assigner: &'a mut Box<dyn ReduceAssigner>,
    strategies: &'a mut Option<StrategySet>,
    technique: Option<Technique>,
) -> (&'a mut dyn Partitioner, &'a mut dyn ReduceAssigner) {
    match (strategies.as_mut(), technique) {
        (Some(set), Some(t)) => set.pair_mut(t),
        _ => (base_partitioner.as_mut(), base_assigner.as_mut()),
    }
}

/// The micro-batch streaming engine.
pub struct StreamingEngine {
    cfg: EngineConfig,
    partitioner: Box<dyn Partitioner>,
    assigner: Box<dyn ReduceAssigner>,
    /// Per-technique strategy pool; `Some` exactly when `policy` is.
    strategies: Option<StrategySet>,
    /// Per-batch technique selection for non-`Fixed`
    /// [`EngineConfig::policy`] specs.
    policy: Option<Box<dyn PartitionerPolicy>>,
    /// The constructor's technique (`None` for [`StreamingEngine::with_parts`]).
    base_technique: Option<Technique>,
    /// The key-group routing table the assigner consults; `Some` exactly
    /// when [`EngineConfig::rebalance`] is on (the assigner is then a
    /// [`GroupRoutedAssigner`] over this table). Reset at every run start.
    routing: Option<SharedRoutingTable>,
    job: Job,
    window: Option<WindowSpec>,
    stateful: Option<StatefulOp>,
    fault_tolerance: Option<(usize, FaultPlan)>,
    stragglers: StragglerPlan,
    net_faults: NetFaultPlan,
}

/// The execution backend instantiated for one run, per
/// [`EngineConfig::backend`].
enum BackendRuntime {
    /// Simulated cluster (the default): [`execute_batch_traced`].
    InProcess,
    /// Real threads; virtual times recovered via [`times_from_stats`].
    Threaded(ThreadedExecutor),
    /// Real worker processes/threads over TCP (boxed: the runtime holds
    /// per-worker channels and is much larger than the other variants).
    Distributed {
        rt: Box<DistributedRuntime>,
        spec: JobSpec,
    },
}

/// A batch past the *buffering* state of the driver's state machine:
/// ingested, counted, replicated into the recovery store, and partitioned —
/// everything up to (but excluding) execution and commit. When
/// `pipeline_depth` exceeds 1, up to `depth` of these sit in the prepare
/// queue while older batches execute; on the distributed backend their Map
/// tasks are already on the wire.
struct PreparedBatch {
    seq: u64,
    interval: Interval,
    n_tuples: usize,
    n_keys: usize,
    plan: PartitionPlan,
    raw_overhead: Duration,
    visible_overhead: Duration,
    /// The technique that partitioned this batch (policy-selected or the
    /// constructor's); `None` only under `with_parts`.
    technique: Option<Technique>,
    /// The policy's decision for this batch, when a policy drove it.
    decision: Option<PolicyDecision>,
    /// Plan-quality metrics, computed once at prepare (the policy consumes
    /// them too).
    metrics: PlanMetrics,
    /// Processing time of suffix recomputes after a store loss (depth-1
    /// only — scheduled faults clamp the window); billed to this batch.
    restore_times: Vec<Duration>,
    /// The columnar plan when [`EngineConfig::columnar`] is on and the
    /// batch's technique sealed one; `plan` is then its exact row rendering
    /// (same blocks, same order) and serves metrics and recovery replans.
    columnar: Option<ColumnarPlan>,
}

impl StreamingEngine {
    /// Build an engine running `job` with the given partitioning technique
    /// (paired with its natural reduce strategy) under `cfg`.
    pub fn new(cfg: EngineConfig, technique: Technique, seed: u64, job: Job) -> StreamingEngine {
        cfg.validate().expect("invalid engine config");
        let mut cfg = cfg;
        let (strategies, policy) = if cfg.policy.is_fixed() {
            // The constructor's technique is authoritative: normalise the
            // spec so `config()` reports what actually runs.
            cfg.policy = PolicySpec::Fixed(technique);
            (None, None)
        } else {
            (
                Some(StrategySet::new(
                    seed,
                    cfg.ingest_shards,
                    cfg.ingest_threads,
                )),
                Some(build_policy(&cfg.policy, technique, seed)),
            )
        };
        let reduce = ReduceStrategy::for_technique(technique);
        // Rebalancing replaces the technique's natural reduce assigner
        // with the group-routed one over a shared routing table (the
        // validated config guarantees a Fixed policy, so the strategy
        // pool never swaps assigners underneath it).
        let routing: Option<SharedRoutingTable> = cfg.rebalance.n_groups().map(|n_groups| {
            std::sync::Arc::new(std::sync::Mutex::new(RoutingTable::new(
                n_groups,
                cfg.reduce_tasks,
            )))
        });
        // The ingest-parallelism knob only applies to Prompt's batching
        // phase; every other technique partitions per tuple.
        let partitioner: Box<dyn Partitioner> = if technique == Technique::Prompt
            && (cfg.ingest_shards > 1 || cfg.ingest_threads > 1)
        {
            Box::new(
                prompt_core::partitioner::PromptPartitioner::with_parallelism(
                    prompt_core::partitioner::BufferingMode::FrequencyAware,
                    cfg.ingest_shards,
                    cfg.ingest_threads,
                ),
            )
        } else {
            technique.build(seed)
        };
        let assigner: Box<dyn ReduceAssigner> = match &routing {
            Some(table) => Box::new(GroupRoutedAssigner::new(std::sync::Arc::clone(table))),
            None => reduce.build_boxed(seed),
        };
        StreamingEngine {
            cfg,
            partitioner,
            assigner,
            strategies,
            policy,
            base_technique: Some(technique),
            routing,
            job,
            window: None,
            stateful: None,
            fault_tolerance: None,
            stragglers: StragglerPlan::none(),
            net_faults: NetFaultPlan::none(),
        }
    }

    /// Build with explicit partitioner / assigner instances.
    pub fn with_parts(
        cfg: EngineConfig,
        partitioner: Box<dyn Partitioner>,
        assigner: Box<dyn ReduceAssigner>,
        job: Job,
    ) -> StreamingEngine {
        cfg.validate().expect("invalid engine config");
        assert!(
            cfg.policy.is_fixed(),
            "with_parts requires a Fixed partitioner policy: an explicit \
             partitioner instance has no Technique name to hot-swap from"
        );
        assert!(
            cfg.rebalance.is_off(),
            "with_parts requires rebalancing off: the rebalancer owns the \
             reduce assigner (a routing-table-backed one), which conflicts \
             with an explicitly supplied instance"
        );
        StreamingEngine {
            cfg,
            partitioner,
            assigner,
            strategies: None,
            policy: None,
            base_technique: None,
            routing: None,
            job,
            window: None,
            stateful: None,
            fault_tolerance: None,
            stragglers: StragglerPlan::none(),
            net_faults: NetFaultPlan::none(),
        }
    }

    /// Attach a window computation.
    pub fn with_window(mut self, spec: WindowSpec) -> StreamingEngine {
        self.window = Some(spec);
        self
    }

    /// Attach a stateful per-key operator, evaluated over the keyed state
    /// store at every window emission (results land in
    /// [`RunResult::stateful`]). Requires a window; routes the run through
    /// the sharded [`KeyedStateStore`], which is bit-identical to the
    /// serial window path.
    pub fn with_stateful(mut self, op: StatefulOp) -> StreamingEngine {
        self.stateful = Some(op);
        self
    }

    /// Enable batch-level fault tolerance (§8): retain `replicas` copies of
    /// every in-window batch input and recover the batches `plan` marks as
    /// lost by recomputing them from the store. Recomputation cost lands in
    /// the affected batch's processing time.
    pub fn with_fault_tolerance(mut self, replicas: usize, plan: FaultPlan) -> StreamingEngine {
        self.fault_tolerance = Some((replicas, plan));
        self
    }

    /// Script real worker kills for the distributed backend: each
    /// [`NetFaultPlan`] entry terminates the named worker's process (or
    /// thread-mode connection) at the scheduled point of the scheduled
    /// batch. The driver detects the loss and recomputes the in-flight
    /// batch from the replicated input store. Ignored by in-process
    /// backends.
    pub fn with_net_faults(mut self, plan: NetFaultPlan) -> StreamingEngine {
        self.net_faults = plan;
        self
    }

    /// Inject scripted environment-induced stragglers: the affected task
    /// times are inflated after execution and the stage makespans
    /// recomputed, so queueing/elasticity react exactly as they would to a
    /// real slow task.
    pub fn with_stragglers(mut self, plan: StragglerPlan) -> StreamingEngine {
        self.stragglers = plan;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Run the engine for `n_batches` heartbeats over `source`.
    pub fn run(&mut self, source: &mut dyn TupleSource, n_batches: usize) -> RunResult {
        self.run_traced(source, n_batches).0
    }

    /// [`StreamingEngine::run`] that also returns the observability
    /// recorder, populated according to the config's
    /// [`trace`](EngineConfig::trace) level. At
    /// [`TraceLevel::Off`](crate::trace::TraceLevel::Off) (the default)
    /// every recording call is an early return, so `run` is just this with
    /// the recorder dropped.
    ///
    /// The recorded virtual-time spans reconcile exactly with the returned
    /// [`BatchRecord`]s: per batch, the spans of
    /// [`PROCESSING_KINDS`](crate::trace::PROCESSING_KINDS) tile
    /// `[heartbeat + queue_delay, …]` without gaps and sum to `processing`,
    /// the `QueueWait` span equals `queue_delay`, and `Accumulate` equals
    /// the batch interval.
    pub fn run_traced(
        &mut self,
        source: &mut dyn TupleSource,
        n_batches: usize,
    ) -> (RunResult, TraceRecorder) {
        let rec = TraceRecorder::new(self.cfg.trace);
        let tracing = rec.enabled();
        let bi = self.cfg.batch_interval;
        let mut result = RunResult::default();
        // The state layer (sharded keyed store + optional checkpointing)
        // replaces the serial WindowState when active; the two paths are
        // bit-identical (see `crate::state::store`).
        let ckpt_cfg = self.cfg.checkpoint.clone();
        let state_on = ckpt_cfg.is_some() || self.stateful.is_some();
        assert!(
            !state_on || self.window.is_some(),
            "checkpointing and stateful operators require a window (with_window)"
        );
        let mut window = if state_on {
            None
        } else {
            self.window
                .map(|spec| WindowState::new(spec, bi, self.job.reduce))
        };
        let mut state_store = state_on.then(|| {
            KeyedStateStore::new(
                self.window.expect("asserted above"),
                bi,
                self.job.reduce,
                self.cfg.reduce_tasks,
            )
        });
        let mut sstats = state_on.then(StateStats::default);
        let mut scaler = self
            .cfg
            .elasticity
            .map(|sc| AutoScaler::new(sc, self.cfg.map_tasks, self.cfg.reduce_tasks));
        // The rebalancer is rebuilt (and the routing table reset to the
        // round-robin layout at version 0) every run, so repeated runs of
        // one engine are bit-identical.
        let mut rebalancer = self.cfg.rebalance.build();
        let n_groups = self.cfg.rebalance.n_groups().unwrap_or(0);
        if let Some(table) = self.routing.as_ref() {
            *table.lock().expect("routing table poisoned") =
                RoutingTable::new(n_groups, self.cfg.reduce_tasks);
        }
        // Imbalance of the most recently committed batch's worker load —
        // informational context for the `Rebalance` trace event. Derived
        // from virtual task times, so identical across backends.
        let mut last_imbalance = 1.0f64;
        let mut p = self.cfg.map_tasks;
        let mut r = self.cfg.reduce_tasks;
        let mut pipeline_free_at = Time::ZERO;
        let mut arrivals: Vec<Tuple> = Vec::new();
        let window_len_batches = self
            .window
            .map(|spec| spec.in_batches(bi).0 as u64)
            .unwrap_or(1);
        let mut store_and_plan = self
            .fault_tolerance
            .as_ref()
            .map(|(replicas, plan)| (ReplicatedBatchStore::new(*replicas), plan.clone()));
        // Resume a restarted run from its checkpoint directory: the loop
        // below then skips the batches the restored watermark covers (the
        // source still advances through them).
        let mut resume_through: Option<u64> = None;
        if let Some(cfg) = ckpt_cfg.as_ref().filter(|c| c.resume) {
            if let Some(restored) = restore(&cfg.dir).expect("checkpoint restore failed") {
                let stats = sstats.as_mut().expect("state layer active");
                stats.restores += 1;
                rec.incr(Counter::StateRestores, 1);
                rec.event(TraceEvent::StateRestore {
                    seq: 0,
                    covered: restored.watermark + 1,
                    bytes: restored.bytes_read,
                    recomputed: 0,
                });
                let mut restored_store = restored.store;
                if restored_store.shard_count() != r {
                    restored_store.migrate(r);
                }
                state_store = Some(restored_store);
                resume_through = Some(restored.watermark);
            }
        }
        let mut checkpointer = ckpt_cfg
            .as_ref()
            .map(|cfg| Checkpointer::create(cfg).expect("failed to open checkpoint directory"));
        let checkpoint_on = checkpointer.is_some();
        let mut backend = match self.cfg.backend {
            Backend::InProcess => BackendRuntime::InProcess,
            Backend::Threaded { threads } => {
                BackendRuntime::Threaded(ThreadedExecutor::new(threads))
            }
            Backend::Distributed { workers, base_port } => {
                let spec = self.job.wire_spec().expect(
                    "Backend::Distributed needs a wire-serialisable job (build it with \
                     Job::identity)",
                );
                let mut rt =
                    DistributedRuntime::launch(DistributedOptions::new(workers, base_port))
                        .expect("failed to launch distributed workers");
                rt.set_fault_plan(self.net_faults.clone());
                // Worker-loss recompute needs the replicated batch inputs
                // even when the user did not configure fault tolerance; a
                // budget of one recompute per worker always suffices (the
                // run aborts anyway once every worker is gone).
                if store_and_plan.is_none() {
                    store_and_plan =
                        Some((ReplicatedBatchStore::new(workers.max(2)), FaultPlan::none()));
                }
                BackendRuntime::Distributed {
                    rt: Box::new(rt),
                    spec,
                }
            }
        };
        // Checkpointed runs retain batch inputs so a lost store can recompute
        // the post-watermark suffix, even without explicit fault tolerance.
        if checkpoint_on && store_and_plan.is_none() {
            store_and_plan = Some((ReplicatedBatchStore::new(2), FaultPlan::none()));
        }
        // Inputs are only retained when something could ever read them back:
        // a scheduled fault, a distributed worker loss, or checkpoint-suffix
        // recompute. A replica-equipped run with no failure source skips the
        // copy entirely.
        let retain_inputs = matches!(self.cfg.backend, Backend::Distributed { .. })
            || checkpoint_on
            || store_and_plan
                .as_ref()
                .is_some_and(|(_, plan)| !plan.is_empty());
        let mut prev_zone: Option<u8> = None;
        let mut was_in_grace = false;
        let depth = effective_depth(
            self.cfg.pipeline_depth,
            scaler.is_some(),
            state_on,
            self.policy.is_some(),
            self.fault_tolerance
                .as_ref()
                .is_some_and(|(_, plan)| !plan.is_empty()),
            rebalancer.is_some(),
        );
        let mut prepared: VecDeque<PreparedBatch> = VecDeque::new();
        let mut next_seq = 0u64;
        // Which technique partitioned each committed-or-prepared batch —
        // store-loss replays of old batches must re-partition them with the
        // same strategy the original run used. Only populated (and only
        // consulted) when a policy drives the run.
        let mut tech_log: HashMap<u64, Technique> = HashMap::new();

        loop {
            // ── Fill: advance batches from *buffering* to *partitioned*
            // until the in-flight window is full or the source is drained.
            while prepared.len() < depth && next_seq < n_batches as u64 {
                let seq = next_seq;
                next_seq += 1;
                let interval = Interval::new(Time(bi.0 * seq), Time(bi.0 * (seq + 1)));
                arrivals.clear();
                source.fill(interval, &mut arrivals);
                debug_assert!(
                    arrivals.windows(2).all(|w| w[0].ts <= w[1].ts),
                    "source must emit in timestamp order"
                );
                if resume_through.is_some_and(|w| seq <= w) {
                    // Covered by the restored checkpoint: the source advances
                    // through the interval, but the batch is not re-processed.
                    continue;
                }
                let batch = MicroBatch::new(std::mem::take(&mut arrivals), interval);
                let n_tuples = batch.len();
                let n_keys = batch.distinct_keys();
                rec.incr(Counter::Batches, 1);
                rec.incr(Counter::Tuples, n_tuples as u64);
                if retain_inputs {
                    if let Some((store, _)) = store_and_plan.as_mut() {
                        // Replicate the batch input on ingestion (§8 point 2).
                        // The buffer is shared (`Arc`), so recovery reads and
                        // replica accounting never deep-copy the tuples again.
                        store.retain(seq, batch.tuples.as_slice().into());
                        if let Some(stats) = sstats.as_mut() {
                            stats.max_retained_tuples = stats
                                .max_retained_tuples
                                .max(store.retained_tuples() as u64);
                            stats.max_retained_batches =
                                stats.max_retained_batches.max(store.len() as u64);
                        }
                    }
                }

                // A scheduled loss of the whole keyed state store: rebuild from
                // the latest checkpoint (or from scratch when none exists) and
                // recompute only the post-watermark suffix from retained inputs.
                let mut restore_times: Vec<Duration> = Vec::new();
                if state_on
                    && store_and_plan
                        .as_ref()
                        .is_some_and(|(_, plan)| plan.loses_store_at(seq))
                {
                    let (mut rebuilt, covered, bytes_read) = match ckpt_cfg
                        .as_ref()
                        .and_then(|cfg| restore(&cfg.dir).expect("checkpoint restore failed"))
                    {
                        Some(rs) => (rs.store, rs.watermark + 1, rs.bytes_read),
                        None => (
                            KeyedStateStore::new(
                                self.window.expect("state layer requires a window"),
                                bi,
                                self.job.reduce,
                                self.cfg.reduce_tasks,
                            ),
                            0,
                            0,
                        ),
                    };
                    if rebuilt.shard_count() != r {
                        rebuilt.migrate(r);
                    }
                    let mut recomputed = 0u64;
                    for b in covered..seq {
                        // Shared handle — the suffix replay partitions the
                        // retained buffer in place, no per-batch deep copy.
                        let input = {
                            let (store, _) = store_and_plan.as_mut().expect("checked above");
                            store.recover(b).unwrap_or_else(|e| {
                                panic!("state loss at batch {seq}: batch {b} unrecoverable: {e}")
                            })
                        };
                        let riv = Interval::new(Time(bi.0 * b), Time(bi.0 * (b + 1)));
                        let tech_b = tech_log.get(&b).copied().or(self.base_technique);
                        let (part, asg) = resolve_pair(
                            &mut self.partitioner,
                            &mut self.assigner,
                            &mut self.strategies,
                            tech_b,
                        );
                        let replan = part.partition_shared(&input, riv, p);
                        let (routput, rtimes) = execute_with_recovery(
                            &mut backend,
                            part,
                            asg,
                            &self.job,
                            &self.cfg,
                            &mut store_and_plan,
                            &replan,
                            None,
                            b,
                            riv,
                            p,
                            r,
                            &rec,
                            tracing,
                            &mut result,
                        );
                        // Replay into the rebuilt store, discarding emissions —
                        // the original run already emitted these windows.
                        rebuilt.push(&routput);
                        restore_times.push(rtimes.processing());
                        recomputed += 1;
                    }
                    let stats = sstats.as_mut().expect("state layer active");
                    stats.restores += 1;
                    stats.recomputed_batches += recomputed;
                    rec.incr(Counter::StateRestores, 1);
                    rec.incr(Counter::RecomputedBatches, recomputed);
                    rec.event(TraceEvent::StateRestore {
                        seq,
                        covered,
                        bytes: bytes_read,
                        recomputed,
                    });
                    state_store = Some(rebuilt);
                }

                // Rebalancing: the policy decides a migration plan at the
                // batch boundary, before this batch is partitioned or
                // assigned, from the commits it has observed (depth is
                // clamped to 1, so the immediately preceding commit is
                // always visible here). Applying the plan moves only the
                // offending key-groups: the table bumps one version and the
                // assigner routes this batch under the new ownership.
                if let Some(reb) = rebalancer.as_mut() {
                    let mplan = reb.decide(seq);
                    if !mplan.is_empty() {
                        let table = self
                            .routing
                            .as_ref()
                            .expect("a rebalancer always runs over a routing table");
                        let version = {
                            let mut t = table.lock().expect("routing table poisoned");
                            t.apply(&mplan).expect("rebalance plan must apply cleanly");
                            t.version()
                        };
                        rec.incr(Counter::Rebalances, 1);
                        rec.incr(Counter::GroupsMoved, mplan.moves.len() as u64);
                        rec.event(TraceEvent::Rebalance {
                            seq,
                            version,
                            moves: mplan.moves.len() as u64,
                            imbalance: last_imbalance,
                        });
                        // Hand each moved group's state slice to its new
                        // owner. In-process/threaded backends share the
                        // driver's store, so only the distributed backend
                        // ships payloads; stateless runs push empty slices
                        // (the ack still fences the next batch behind the
                        // ownership change).
                        let mut pushes: Vec<(u32, u32, Vec<u8>)> = Vec::new();
                        for mv in &mplan.moves {
                            let payload = state_store
                                .as_ref()
                                .map(|s| s.encode_group(mv.group, n_groups))
                                .unwrap_or_default();
                            rec.event(TraceEvent::GroupMigrate {
                                seq,
                                group: mv.group,
                                from: mv.from,
                                to: mv.to,
                                bytes: payload.len() as u64,
                            });
                            pushes.push((mv.group, mv.to, payload));
                        }
                        if let BackendRuntime::Distributed { rt, .. } = &mut backend {
                            rt.migrate_groups(seq, version, pushes)
                                .expect("group migration push failed");
                        }
                        result.migrations.push((seq, mplan));
                    }
                }

                // Per-batch technique resolution: the policy (when present)
                // scores the previous batch's statistics and may hot-swap
                // the strategy here, at the batch boundary. The decision is
                // a pure function of prior observations — never of trace
                // level or wall clock — so traced and untraced runs select
                // identical sequences.
                let dec0 = std::time::Instant::now();
                let decision = self.policy.as_mut().map(|pol| pol.decide(seq));
                let decide_us = dec0.elapsed().as_micros() as u64;
                let technique = decision
                    .as_ref()
                    .map(|d| d.technique)
                    .or(self.base_technique);
                if let Some(d) = decision.as_ref() {
                    tech_log.insert(seq, d.technique);
                    rec.incr(Counter::PolicyDecisions, 1);
                    if d.switched {
                        rec.incr(Counter::PolicySwitches, 1);
                        rec.event(TraceEvent::PolicySwitch {
                            seq,
                            from: d.prev.label(),
                            to: d.technique.label(),
                        });
                    }
                }
                // Partition (optionally measuring real cost; when tracing, the
                // phased path additionally times select / seal / symbolic /
                // materialize — the plan is bit-identical either way).
                let t0 = std::time::Instant::now();
                let partitioner: &mut dyn Partitioner =
                    match (self.strategies.as_mut(), decision.as_ref()) {
                        (Some(set), Some(d)) => set.registry.get_or_build(d.technique),
                        _ => self.partitioner.as_mut(),
                    };
                let mut columnar: Option<ColumnarPlan> = None;
                let (plan, phases) = match self
                    .cfg
                    .columnar
                    .then(|| partitioner.partition_columnar(&batch, p))
                    .flatten()
                {
                    Some((cplan, ph)) => {
                        // The row rendering of the same assignment (same
                        // blocks, same order): metrics, cost-model times and
                        // recovery replans all stay on the row API.
                        let row = cplan.to_row_plan();
                        columnar = Some(cplan);
                        (row, ph)
                    }
                    None if tracing => partitioner.partition_phased(&batch, p),
                    None => (partitioner.partition(&batch, p), PartitionPhases::default()),
                };
                let raw_overhead = match self.cfg.overhead {
                    OverheadMode::None => Duration::ZERO,
                    OverheadMode::Fixed(d) => d,
                    OverheadMode::Measured => {
                        Duration::from_micros(t0.elapsed().as_micros() as u64)
                    }
                };
                if tracing {
                    // The select/score phase: the policy's decision plus the
                    // technique's own per-tuple selection work, split out so
                    // policy overhead is visible in stage-breakdown tables.
                    if decision.is_some() || phases.select_us > 0 {
                        rec.phase(
                            seq,
                            StageKind::Select,
                            Duration::from_micros(decide_us + phases.select_us),
                        );
                    }
                    if phases != PartitionPhases::default() {
                        rec.phase(seq, StageKind::Seal, Duration::from_micros(phases.seal_us));
                        rec.phase(
                            seq,
                            StageKind::PartitionSymbolic,
                            Duration::from_micros(phases.symbolic_us),
                        );
                        rec.phase(
                            seq,
                            StageKind::PartitionMaterialize,
                            Duration::from_micros(phases.materialize_us),
                        );
                    }
                }
                let metrics = PlanMetrics::of(&plan);
                if let Some(pol) = self.policy.as_mut() {
                    pol.observe(&BatchObservation {
                        seq,
                        technique: technique.expect("policy runs always resolve a technique"),
                        n_tuples,
                        n_keys,
                        map_tasks: p,
                        metrics,
                        plan: &plan,
                    });
                }
                arrivals = batch.tuples; // reuse the allocation next interval
                let visible_overhead = raw_overhead - self.cfg.early_release_slack();
                let pb = PreparedBatch {
                    seq,
                    interval,
                    n_tuples,
                    n_keys,
                    plan,
                    raw_overhead,
                    visible_overhead,
                    technique,
                    decision,
                    metrics,
                    restore_times,
                    columnar,
                };
                if depth > 1 {
                    if let BackendRuntime::Distributed { rt, spec } = &mut backend {
                        // Eager dispatch: this batch's Map tasks go on the wire
                        // now, overlapping the older in-flight batches' reduce
                        // and wire transfer. Reduce dispatch waits behind the
                        // runtime's assigner-order gate, so allocator state is
                        // still advanced strictly in batch order.
                        match &pb.columnar {
                            Some(cp) => rt.submit_batch_columnar(seq, seq, cp, spec, r),
                            None => rt.submit_batch(seq, seq, &pb.plan, spec, r),
                        }
                    }
                }
                prepared.push_back(pb);
            }

            // ── Execute + commit the oldest in-flight batch. Everything
            // with cross-batch feedback below (pipeline clock, windows,
            // checkpoints, retention expiry, scaling) runs here, in strict
            // batch order.
            let Some(pb) = prepared.pop_front() else {
                break;
            };
            let PreparedBatch {
                seq,
                interval,
                n_tuples,
                n_keys,
                plan,
                raw_overhead,
                visible_overhead,
                technique,
                decision,
                metrics,
                restore_times,
                columnar,
            } = pb;

            // Execute on the configured backend, recomputing from the
            // replicated store if a distributed worker dies mid-batch. At
            // depth > 1 the distributed batch is already in flight (maps
            // dispatched at prepare); wait_batch drives the shared event
            // pump, which also advances the younger in-flight batches while
            // this one completes.
            let (mut output, mut times) = match &mut backend {
                BackendRuntime::Distributed { rt, spec } if depth > 1 => loop {
                    // No-ops while the seqs are in flight (or already
                    // done); after a loss these re-dispatch the aborted
                    // window in batch order.
                    match &columnar {
                        Some(cp) => rt.submit_batch_columnar(seq, seq, cp, spec, r),
                        None => rt.submit_batch(seq, seq, &plan, spec, r),
                    }
                    for q in prepared.iter() {
                        match &q.columnar {
                            Some(cp) => rt.submit_batch_columnar(q.seq, q.seq, cp, spec, r),
                            None => rt.submit_batch(q.seq, q.seq, &q.plan, spec, r),
                        }
                    }
                    match rt.wait_batch(seq, self.assigner.as_mut(), tracing.then_some(&rec)) {
                        Ok((output, stats)) => {
                            break (
                                output,
                                times_from_stats(&plan, &stats, &self.cfg.cost, &self.cfg.cluster),
                            );
                        }
                        Err(loss) => {
                            // One recovery per loss, mirroring depth 1: the
                            // failed attempts made no assigner calls (fresh
                            // assignments replay from the runtime's cache),
                            // so allocator state — and with it the output —
                            // is untouched. The replica spend keeps the
                            // recovery-budget accounting identical to the
                            // serial path.
                            result.worker_losses += 1;
                            result.recoveries += 1;
                            let (store, _) = store_and_plan
                                .as_mut()
                                .expect("distributed runs always carry a replicated store");
                            let _ = store.recover(seq).unwrap_or_else(|e| {
                                panic!("worker loss on batch {seq} beyond recovery budget: {e}")
                            });
                            if tracing {
                                rec.incr(Counter::WorkersLost, 1);
                                rec.incr(Counter::Recoveries, 1);
                                rec.event(TraceEvent::WorkerLost {
                                    seq,
                                    worker: loss.worker,
                                });
                                rec.event(TraceEvent::Recovery {
                                    seq,
                                    replicas_left: store.replicas_left(seq).unwrap_or(0),
                                });
                            }
                        }
                    }
                },
                backend => {
                    let (part, asg) = resolve_pair(
                        &mut self.partitioner,
                        &mut self.assigner,
                        &mut self.strategies,
                        technique,
                    );
                    execute_with_recovery(
                        backend,
                        part,
                        asg,
                        &self.job,
                        &self.cfg,
                        &mut store_and_plan,
                        &plan,
                        columnar.as_ref(),
                        seq,
                        interval,
                        p,
                        r,
                        &rec,
                        tracing,
                        &mut result,
                    )
                }
            };
            if !self.stragglers.is_empty() {
                self.stragglers
                    .apply(seq, &mut times.map_tasks, &mut times.reduce_tasks);
                times.map_stage = self.cfg.cluster.makespan(&times.map_tasks);
                times.reduce_stage = self.cfg.cluster.makespan(&times.reduce_tasks);
                if tracing {
                    for e in self.stragglers.events_for(seq) {
                        // Mirror `apply`: out-of-range task indices did
                        // nothing, so they are not recorded either.
                        let (stage, n) = match e.stage {
                            crate::straggler::Stage::Map => {
                                (StageKind::MapStage, times.map_tasks.len())
                            }
                            crate::straggler::Stage::Reduce => {
                                (StageKind::ReduceStage, times.reduce_tasks.len())
                            }
                        };
                        if e.task < n {
                            rec.incr(Counter::Stragglers, 1);
                            rec.event(TraceEvent::Straggler {
                                seq,
                                stage,
                                task: e.task,
                                slowdown: e.slowdown,
                            });
                        }
                    }
                }
            }
            // Per-worker load accounting: the trace summary's imbalance
            // signal, and the rebalancer's observation of this commit.
            rec.worker_busy(&times.reduce_tasks);
            if let Some(reb) = rebalancer.as_mut() {
                let busy: Vec<u64> = times.reduce_tasks.iter().map(|d| d.0).collect();
                let group_tuples = group_weights(&plan, n_groups);
                let (version, owners) = {
                    let t = self
                        .routing
                        .as_ref()
                        .expect("a rebalancer always runs over a routing table")
                        .lock()
                        .expect("routing table poisoned");
                    (t.version(), t.owners().to_vec())
                };
                reb.observe(&RebalanceObservation {
                    seq,
                    version,
                    worker_busy_us: &busy,
                    group_tuples: &group_tuples,
                    owners: &owners,
                });
                last_imbalance = imbalance_ratio(&busy);
            }
            let mut processing = visible_overhead + times.processing();
            // Suffix recomputes after a store loss bill this batch, exactly
            // like the per-batch recovery recomputations below.
            for &d in &restore_times {
                processing += d;
            }

            // Fault injection: each scheduled loss of this batch's state
            // forces one recomputation from the replicated input.
            let mut recovery_times: Vec<Duration> = restore_times;
            if store_and_plan
                .as_ref()
                .is_some_and(|(_, fault_plan)| fault_plan.losses_for(seq) > 0)
            {
                let losses = store_and_plan
                    .as_ref()
                    .map(|(_, fp)| fp.losses_for(seq))
                    .unwrap_or(0);
                for _ in 0..losses {
                    // Shared handle — the recompute partitions the retained
                    // buffer in place, no deep copy per injected loss.
                    let input = {
                        let (store, _) = store_and_plan.as_mut().expect("checked above");
                        store
                            .recover(seq)
                            .expect("injected failure beyond recovery budget")
                    };
                    let (part, asg) = resolve_pair(
                        &mut self.partitioner,
                        &mut self.assigner,
                        &mut self.strategies,
                        technique,
                    );
                    let replan = part.partition_shared(&input, interval, p);
                    let (recovered, retimes) = execute_with_recovery(
                        &mut backend,
                        part,
                        asg,
                        &self.job,
                        &self.cfg,
                        &mut store_and_plan,
                        &replan,
                        None,
                        seq,
                        interval,
                        p,
                        r,
                        &rec,
                        tracing,
                        &mut result,
                    );
                    output = recovered;
                    processing += retimes.processing();
                    result.recoveries += 1;
                    if tracing {
                        recovery_times.push(retimes.processing());
                        rec.incr(Counter::Recoveries, 1);
                        let (store, _) = store_and_plan.as_ref().expect("checked above");
                        rec.event(TraceEvent::Recovery {
                            seq,
                            replicas_left: store.replicas_left(seq).unwrap_or(0),
                        });
                    }
                }
            }
            if let Some((store, _)) = store_and_plan.as_mut() {
                // Without checkpointing, batches that have produced output
                // and left every window can drop their replicated input
                // (§8). With checkpointing, retention is truncated at the
                // checkpoint watermark on commit instead — durable state
                // covers everything before it.
                if !checkpoint_on && seq + 1 >= window_len_batches {
                    store.expire_through(seq + 1 - window_len_batches);
                }
            }

            // Pipelined scheduling: processing starts at the heartbeat or
            // when the pipeline frees up, whichever is later.
            let heartbeat = interval.end;
            let start = if pipeline_free_at > heartbeat {
                pipeline_free_at
            } else {
                heartbeat
            };
            let queue_delay = start.since(heartbeat);
            pipeline_free_at = start + processing;
            let latency = bi + queue_delay + processing;
            let w = processing.as_secs_f64() / bi.as_secs_f64();

            if tracing {
                // The batch's lifecycle as virtual-time spans. The
                // PROCESSING_KINDS spans tile [start, start + processing]
                // with no gaps, so per batch they sum to `processing`
                // exactly — the reconciliation invariant the integration
                // tests assert.
                rec.span(seq, StageKind::Accumulate, interval.start, interval.end);
                rec.span(seq, StageKind::QueueWait, heartbeat, start);
                let mut cursor = start;
                rec.span(
                    seq,
                    StageKind::PartitionVisible,
                    cursor,
                    cursor + visible_overhead,
                );
                cursor = cursor + visible_overhead;
                rec.span(seq, StageKind::MapStage, cursor, cursor + times.map_stage);
                cursor = cursor + times.map_stage;
                rec.span(
                    seq,
                    StageKind::ReduceStage,
                    cursor,
                    cursor + times.reduce_stage,
                );
                cursor = cursor + times.reduce_stage;
                for &rt in &recovery_times {
                    rec.span(seq, StageKind::Recovery, cursor, cursor + rt);
                    cursor = cursor + rt;
                }
                debug_assert_eq!(cursor, start + processing, "spans must tile processing");
            }

            if queue_delay.as_secs_f64() > self.cfg.backpressure_queue * bi.as_secs_f64() {
                result.backpressure = true;
                rec.incr(Counter::BackpressureBatches, 1);
                rec.event(TraceEvent::Backpressure {
                    seq,
                    queue_us: queue_delay.0,
                    limit_us: bi.mul_f64(self.cfg.backpressure_queue).0,
                });
            }

            // Elasticity (Algorithm 4).
            if let Some(sc) = scaler.as_mut() {
                let zone = sc.zone(w);
                if tracing && prev_zone != Some(zone) {
                    if prev_zone.is_some() {
                        rec.incr(Counter::ZoneTransitions, 1);
                    }
                    rec.event(TraceEvent::Zone { seq, zone, w });
                }
                prev_zone = Some(zone);
                let noops_before = sc.noop_decisions();
                if let Some(action) = sc.observe(Observation {
                    w,
                    n_tuples: n_tuples as u64,
                    n_keys: n_keys as u64,
                }) {
                    p = action.map_tasks;
                    r = action.reduce_tasks;
                    result.scale_events.push((seq, action));
                    if tracing {
                        let (rate_trend, key_trend) = sc.last_trends();
                        rec.incr(
                            if action.out {
                                Counter::ScaleOut
                            } else {
                                Counter::ScaleIn
                            },
                            1,
                        );
                        rec.incr(Counter::GraceEntries, 1);
                        rec.event(TraceEvent::Scale {
                            seq,
                            map_tasks: action.map_tasks,
                            reduce_tasks: action.reduce_tasks,
                            out: action.out,
                            rate_trend,
                            key_trend,
                        });
                        rec.event(TraceEvent::Grace { seq, entered: true });
                    }
                }
                if tracing {
                    rec.incr(Counter::NoopDecisions, sc.noop_decisions() - noops_before);
                    let in_grace = sc.in_grace();
                    if was_in_grace && !in_grace {
                        rec.event(TraceEvent::Grace {
                            seq,
                            entered: false,
                        });
                    }
                    was_in_grace = in_grace;
                }
            }

            // Window maintenance: through the sharded state store (with
            // checkpoint commits and watermark truncation) when the state
            // layer is active, else the serial WindowState. The two paths
            // are bit-identical.
            if let Some(store) = state_store.as_mut() {
                let (res, delta) = store.push_with_delta(&output);
                if let Some(ckpt) = checkpointer.as_mut() {
                    if let Some(commit) =
                        ckpt.record(&delta, store).expect("checkpoint write failed")
                    {
                        let stats = sstats.as_mut().expect("state layer active");
                        stats.checkpoints += 1;
                        stats.checkpoint_bytes += commit.bytes;
                        rec.incr(Counter::Checkpoints, 1);
                        rec.incr(Counter::CheckpointBytes, commit.bytes);
                        if commit.snapshot {
                            stats.snapshots += 1;
                            rec.incr(Counter::Snapshots, 1);
                        }
                        rec.event(TraceEvent::Checkpoint {
                            seq: commit.seq,
                            snapshot: commit.snapshot,
                            bytes: commit.bytes,
                            wall_us: commit.wall_us,
                        });
                        if let Some((bstore, _)) = store_and_plan.as_mut() {
                            // Everything the commit covers is durable:
                            // truncate input retention at the watermark.
                            bstore.expire_through(commit.seq);
                        }
                    }
                }
                if let Some(res) = res {
                    if let Some(op) = self.stateful {
                        result.stateful.push(WindowResult {
                            last_batch_seq: res.last_batch_seq,
                            aggregates: op.eval(store),
                        });
                    }
                    result.windows.push(res);
                }
            } else if let Some(ws) = window.as_mut() {
                if let Some(res) = ws.push(output) {
                    result.windows.push(res);
                }
            }

            // Elasticity changed the reduce count: migrate state shards to
            // the new allocation. With checkpointing on, a migration is a
            // commit point (deltas are bucket-keyed, so the changelog must
            // never mix shard counts — `snapshot_now` rolls it over).
            if let Some(store) = state_store.as_mut() {
                if store.shard_count() != r {
                    let report = store.migrate(r);
                    let stats = sstats.as_mut().expect("state layer active");
                    stats.migrations += 1;
                    stats.migrated_keys += report.keys_moved as u64;
                    rec.incr(Counter::StateMigrations, 1);
                    rec.incr(Counter::MigratedKeys, report.keys_moved as u64);
                    rec.event(TraceEvent::StateMigrate {
                        seq,
                        from_r: report.from_r,
                        to_r: report.to_r,
                        keys: report.keys_moved as u64,
                        bytes: report.bytes,
                    });
                    if let BackendRuntime::Distributed { rt, .. } = &mut backend {
                        // Hand the re-sharded state to the workers owning
                        // the new buckets over the wire.
                        let payloads: Vec<(u32, Vec<u8>)> = (0..store.shard_count())
                            .map(|b| (b as u32, store.encode_shard(b)))
                            .collect();
                        rt.migrate_state(seq, payloads)
                            .expect("state migration push failed");
                    }
                    if let Some(ckpt) = checkpointer.as_mut() {
                        let commit = ckpt.snapshot_now(store).expect("checkpoint write failed");
                        stats.checkpoints += 1;
                        stats.checkpoint_bytes += commit.bytes;
                        stats.snapshots += 1;
                        rec.incr(Counter::Checkpoints, 1);
                        rec.incr(Counter::CheckpointBytes, commit.bytes);
                        rec.incr(Counter::Snapshots, 1);
                        rec.event(TraceEvent::Checkpoint {
                            seq: commit.seq,
                            snapshot: true,
                            bytes: commit.bytes,
                            wall_us: commit.wall_us,
                        });
                        if let Some((bstore, _)) = store_and_plan.as_mut() {
                            bstore.expire_through(commit.seq);
                        }
                    }
                }
            }

            if let Some(d) = decision {
                result.policy_decisions.push(d);
            }
            result.batches.push(BatchRecord {
                seq,
                n_tuples,
                n_keys,
                map_tasks: plan.n_blocks(),
                reduce_tasks: r,
                partition_overhead: raw_overhead,
                visible_overhead,
                map_stage: times.map_stage,
                reduce_stage: times.reduce_stage,
                processing,
                queue_delay,
                latency,
                w,
                map_task_times: times.map_tasks,
                reduce_task_times: times.reduce_tasks,
                plan_metrics: metrics,
                technique,
            });
        }
        if let BackendRuntime::Distributed { rt, .. } = &mut backend {
            result.net = Some(rt.stats());
            rt.shutdown();
        }
        if let Some(mut stats) = sstats {
            if let Some(ckpt) = &checkpointer {
                let cs = ckpt.stats();
                stats.snapshot_bytes = cs.snapshot_bytes;
                stats.watermark = ckpt.watermark();
                rec.incr(Counter::SnapshotBytes, cs.snapshot_bytes);
            }
            result.state = Some(stats);
        }
        (result, rec)
    }
}

/// The effective in-flight window of the batch-state machine for one run:
/// the configured [`EngineConfig::pipeline_depth`], clamped to 1 when any
/// active feature is a commit-to-prepare feedback path — a decision made
/// while committing batch N steers how batch N+1 is prepared, so those
/// runs need the classic strictly alternating depth-1 loop:
///
/// * `elasticity` — scale actions picked at commit change the next batch's
///   task counts;
/// * `state_on` — the durable state layer: checkpoint truncation of input
///   retention and store-loss suffix recomputes read commit-time
///   watermarks at prepare;
/// * `policy` — a non-`Fixed` partitioner policy: each batch runs with its
///   own (partitioner, assigner) pair, which the depth-d distributed wait
///   path cannot thread yet;
/// * `fault_plan` — a non-empty scheduled [`FaultPlan`]: store-loss
///   recomputes at prepare read inputs that commit-time retention expiry
///   frees;
/// * `rebalance` — the key-group rebalancer: a migration decided at the
///   next batch boundary must observe the immediately preceding commit's
///   load, and the routing table must not change under an in-flight batch.
///
/// Scripted worker kills ([`NetFaultPlan`]) need no clamp: losses surface
/// through the wait path and recompute from the replicated store at any
/// depth.
fn effective_depth(
    configured: usize,
    elasticity: bool,
    state_on: bool,
    policy: bool,
    fault_plan: bool,
    rebalance: bool,
) -> usize {
    if elasticity || state_on || policy || fault_plan || rebalance {
        1
    } else {
        configured
    }
}

/// Execute one batch on whichever backend the run instantiated.
///
/// All three arms produce bit-identical outputs and virtual [`StageTimes`]
/// given the same plan and assigner state: the real backends report raw
/// [`BucketStats`](crate::stage::BucketStats) which [`times_from_stats`]
/// converts with the same cost model the simulated path uses directly.
///
/// For [`BackendRuntime::Distributed`], a worker lost mid-batch triggers the
/// §8 recovery path: the attempt is discarded (it made no assigner calls, so
/// allocator state is untouched), the batch input is recovered from the
/// replicated store, re-partitioned, and retried on the survivors. Failed
/// attempts contribute no virtual time — virtual time models the healthy
/// cluster, while the loss itself is visible in
/// [`RunResult::worker_losses`], [`RunResult::recoveries`] and the trace's
/// `WorkerLost`/`Recovery` events.
#[allow(clippy::too_many_arguments)]
fn execute_with_recovery(
    backend: &mut BackendRuntime,
    partitioner: &mut dyn Partitioner,
    assigner: &mut dyn ReduceAssigner,
    job: &Job,
    cfg: &EngineConfig,
    store_and_plan: &mut Option<(ReplicatedBatchStore, FaultPlan)>,
    plan: &PartitionPlan,
    columnar: Option<&ColumnarPlan>,
    seq: u64,
    interval: Interval,
    p: usize,
    r: usize,
    rec: &TraceRecorder,
    tracing: bool,
    result: &mut RunResult,
) -> (BatchOutput, StageTimes) {
    match backend {
        BackendRuntime::InProcess => match columnar {
            Some(cp) => execute_columnar_traced(
                cp,
                job,
                assigner,
                r,
                &cfg.cost,
                &cfg.cluster,
                tracing.then_some(rec),
            ),
            None => execute_batch_traced(
                plan,
                job,
                assigner,
                r,
                &cfg.cost,
                &cfg.cluster,
                tracing.then_some(rec),
            ),
        },
        BackendRuntime::Threaded(exec) => {
            let (output, stats, _wall) = match columnar {
                Some(cp) => exec.execute_columnar_with_stats(
                    cp,
                    job,
                    assigner,
                    r,
                    tracing.then_some((rec, seq)),
                ),
                None => {
                    exec.execute_with_stats(plan, job, assigner, r, tracing.then_some((rec, seq)))
                }
            };
            // The row plan is the exact row rendering of the columnar one,
            // so the cost-model conversion is shared.
            let times = times_from_stats(plan, &stats, &cfg.cost, &cfg.cluster);
            (output, times)
        }
        BackendRuntime::Distributed { rt, spec } => {
            let mut replan: Option<PartitionPlan> = None;
            loop {
                let attempt_plan = replan.as_ref().unwrap_or(plan);
                // The first attempt ships column slices when available (the
                // frames are byte-identical to the row encoding); recovery
                // retries re-partition from the replicated row input.
                let attempt = match (&replan, columnar) {
                    (None, Some(cp)) => rt.execute_batch_columnar(
                        seq,
                        cp,
                        spec,
                        assigner,
                        r,
                        tracing.then_some((rec, seq)),
                    ),
                    _ => rt.execute_batch(
                        seq,
                        attempt_plan,
                        spec,
                        assigner,
                        r,
                        tracing.then_some((rec, seq)),
                    ),
                };
                match attempt {
                    Ok((output, stats)) => {
                        let times = times_from_stats(attempt_plan, &stats, &cfg.cost, &cfg.cluster);
                        return (output, times);
                    }
                    Err(loss) => {
                        result.worker_losses += 1;
                        result.recoveries += 1;
                        let (store, _) = store_and_plan
                            .as_mut()
                            .expect("distributed runs always carry a replicated store");
                        // A shared handle to the replicated input — replay
                        // re-partitions the same buffer without copying it.
                        let input = store.recover(seq).unwrap_or_else(|e| {
                            panic!("worker loss on batch {seq} beyond recovery budget: {e}")
                        });
                        if tracing {
                            rec.incr(Counter::WorkersLost, 1);
                            rec.incr(Counter::Recoveries, 1);
                            rec.event(TraceEvent::WorkerLost {
                                seq,
                                worker: loss.worker,
                            });
                            rec.event(TraceEvent::Recovery {
                                seq,
                                replicas_left: store.replicas_left(seq).unwrap_or(0),
                            });
                        }
                        replan = Some(partitioner.partition_shared(&input, interval, p));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::cost::CostModel;
    use crate::job::ReduceOp;
    use prompt_core::types::Key;

    /// Constant-rate source: `rate` tuples per interval, keys round-robin
    /// over `keys`.
    fn const_source(rate: usize, keys: u64) -> impl TupleSource {
        move |iv: Interval, out: &mut Vec<Tuple>| {
            let step = iv.len().0 / (rate as u64 + 1);
            for i in 0..rate {
                out.push(Tuple::keyed(
                    Time(iv.start.0 + step * (i as u64 + 1)),
                    Key(i as u64 % keys),
                ));
            }
        }
    }

    fn small_cfg() -> EngineConfig {
        EngineConfig {
            batch_interval: Duration::from_secs(1),
            map_tasks: 4,
            reduce_tasks: 4,
            cluster: Cluster::new(1, 4),
            cost: CostModel::default(),
            ..EngineConfig::default()
        }
    }

    #[test]
    fn effective_depth_passes_through_when_nothing_clamps() {
        assert_eq!(effective_depth(4, false, false, false, false, false), 4);
        assert_eq!(effective_depth(1, false, false, false, false, false), 1);
    }

    #[test]
    fn effective_depth_clamps_for_elasticity() {
        assert_eq!(effective_depth(4, true, false, false, false, false), 1);
    }

    #[test]
    fn effective_depth_clamps_for_the_state_layer() {
        assert_eq!(effective_depth(4, false, true, false, false, false), 1);
    }

    #[test]
    fn effective_depth_clamps_for_a_non_fixed_policy() {
        assert_eq!(effective_depth(4, false, false, true, false, false), 1);
    }

    #[test]
    fn effective_depth_clamps_for_a_scheduled_fault_plan() {
        assert_eq!(effective_depth(4, false, false, false, true, false), 1);
    }

    #[test]
    fn effective_depth_clamps_for_the_rebalancer() {
        assert_eq!(effective_depth(4, false, false, false, false, true), 1);
    }

    /// Skewed source: `hot_share` of each interval's tuples hit one hot
    /// key, the rest round-robin over `cold_keys`.
    fn skewed_source(rate: usize, hot_share: f64, cold_keys: u64) -> impl TupleSource {
        move |iv: Interval, out: &mut Vec<Tuple>| {
            let step = iv.len().0 / (rate as u64 + 1);
            let hot = (rate as f64 * hot_share) as usize;
            for i in 0..rate {
                let key = if i < hot {
                    Key(0)
                } else {
                    Key(1 + i as u64 % cold_keys)
                };
                out.push(Tuple::keyed(Time(iv.start.0 + step * (i as u64 + 1)), key));
            }
        }
    }

    #[test]
    fn rebalancer_migrates_hot_groups_without_changing_answers() {
        use crate::rebalance::{RebalanceConfig, RebalanceSpec};
        let run = |spec: RebalanceSpec| {
            let mut cfg = small_cfg();
            cfg.rebalance = spec;
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Hash,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(WindowSpec::tumbling(Duration::from_secs(2)));
            eng.run(&mut skewed_source(2000, 0.6, 30), 10)
        };
        let base = run(RebalanceSpec::Off);
        let rebalanced = run(RebalanceSpec::Auto(RebalanceConfig {
            n_groups: 16,
            ..RebalanceConfig::default()
        }));
        assert!(base.migrations.is_empty());
        assert!(
            !rebalanced.migrations.is_empty(),
            "a 60% hot key must trip the rebalancer"
        );
        // Routing only changes placement, never the query answer.
        assert_eq!(base.windows.len(), rebalanced.windows.len());
        for (a, b) in base.windows.iter().zip(&rebalanced.windows) {
            assert_eq!(a.aggregates.len(), b.aggregates.len());
            for (k, v) in &a.aggregates {
                assert_eq!(b.aggregates[k].to_bits(), v.to_bits());
            }
        }
        // Migrating groups off the hot worker lowers the reduce makespan in
        // the steady state.
        let tail = |r: &RunResult| r.steady_state_mean(|b| b.reduce_stage.as_secs_f64());
        assert!(
            tail(&rebalanced) < tail(&base),
            "rebalanced reduce stage {:.4}s should beat static {:.4}s",
            tail(&rebalanced),
            tail(&base)
        );
    }

    #[test]
    fn forced_rebalance_replays_the_recorded_run_bit_identically() {
        use crate::rebalance::{RebalanceConfig, RebalanceSpec};
        let run = |spec: RebalanceSpec| {
            let mut cfg = small_cfg();
            cfg.rebalance = spec;
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Hash,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(WindowSpec::tumbling(Duration::from_secs(2)));
            eng.run(&mut skewed_source(2000, 0.6, 30), 10)
        };
        let auto = run(RebalanceSpec::Auto(RebalanceConfig {
            n_groups: 16,
            ..RebalanceConfig::default()
        }));
        assert!(!auto.migrations.is_empty());
        let forced = run(RebalanceSpec::Forced {
            n_groups: 16,
            plans: auto.migrations.clone(),
        });
        assert_eq!(auto.migrations, forced.migrations);
        assert_eq!(auto.batches.len(), forced.batches.len());
        for (a, b) in auto.batches.iter().zip(&forced.batches) {
            assert_eq!(a.reduce_task_times, b.reduce_task_times, "batch {}", a.seq);
            assert_eq!(a.processing, b.processing, "batch {}", a.seq);
        }
    }

    #[test]
    fn light_load_is_stable_with_no_queueing() {
        let mut eng = StreamingEngine::new(
            small_cfg(),
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        let res = eng.run(&mut const_source(1000, 50), 10);
        assert_eq!(res.batches.len(), 10);
        assert!(res.stable());
        assert!(!res.backpressure);
        for b in &res.batches {
            assert_eq!(b.queue_delay, Duration::ZERO);
            assert_eq!(b.n_tuples, 1000);
            assert_eq!(b.n_keys, 50);
            assert!(b.w < 1.0, "light load must fit the interval, W = {}", b.w);
            assert_eq!(b.latency, Duration::from_secs(1) + b.processing);
        }
        assert!((res.throughput(Duration::from_secs(1)) - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn overload_queues_and_triggers_backpressure() {
        // Inflate per-tuple cost so the load exceeds the interval.
        let mut cfg = small_cfg();
        cfg.cost = CostModel {
            map_per_tuple: Duration::from_micros(2000),
            ..CostModel::default()
        };
        let mut eng = StreamingEngine::new(
            cfg,
            Technique::Shuffle,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        let res = eng.run(&mut const_source(5000, 50), 12);
        assert!(
            res.backpressure,
            "sustained overload must trip back-pressure"
        );
        assert!(!res.stable());
        // Queue delay grows monotonically under constant overload.
        let delays: Vec<u64> = res.batches.iter().map(|b| b.queue_delay.0).collect();
        assert!(delays.windows(2).all(|w| w[1] >= w[0]), "{delays:?}");
    }

    #[test]
    fn window_results_are_emitted() {
        let mut eng = StreamingEngine::new(
            small_cfg(),
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        )
        .with_window(WindowSpec::sliding(
            Duration::from_secs(3),
            Duration::from_secs(1),
        ));
        let res = eng.run(&mut const_source(300, 3), 6);
        assert_eq!(res.windows.len(), 6);
        // After warm-up each window covers 3 batches × 100 per key.
        let last = res.windows.last().unwrap();
        for k in 0..3u64 {
            assert_eq!(last.aggregates[&Key(k)], 300.0);
        }
    }

    #[test]
    fn query_answers_identical_across_techniques() {
        // Partitioning must never change query results.
        let mut reference: Option<Vec<(u64, f64)>> = None;
        for tech in Technique::EVALUATION_SET {
            let mut eng = StreamingEngine::new(
                small_cfg(),
                tech,
                7,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(WindowSpec::tumbling(Duration::from_secs(2)));
            let res = eng.run(&mut const_source(500, 21), 6);
            let mut got: Vec<(u64, f64)> = res
                .windows
                .last()
                .unwrap()
                .aggregates
                .iter()
                .map(|(k, v)| (k.0, *v))
                .collect();
            got.sort_by_key(|a| a.0);
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(&got, want, "{tech:?} changed the answer"),
            }
        }
    }

    #[test]
    fn sharded_ingest_preserves_query_answers() {
        let run = |shards: usize, threads: usize| {
            let mut cfg = small_cfg();
            cfg.ingest_shards = shards;
            cfg.ingest_threads = threads;
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(WindowSpec::tumbling(Duration::from_secs(2)));
            eng.run(&mut const_source(500, 21), 6)
        };
        let reference = run(1, 1);
        for (shards, threads) in [(4, 2), (8, 4)] {
            let res = run(shards, threads);
            assert_eq!(res.batches.len(), reference.batches.len());
            let a = reference.windows.last().unwrap();
            let b = res.windows.last().unwrap();
            assert_eq!(a.aggregates.len(), b.aggregates.len());
            for (k, v) in &a.aggregates {
                assert_eq!(b.aggregates[k], *v, "{shards} shards / {threads} threads");
            }
        }
    }

    #[test]
    fn elasticity_scales_out_under_growing_load() {
        let mut cfg = small_cfg();
        cfg.map_tasks = 2;
        cfg.reduce_tasks = 2;
        cfg.cluster = Cluster::new(4, 4);
        cfg.cost = CostModel {
            map_per_tuple: Duration::from_micros(150),
            reduce_per_tuple: Duration::from_micros(150),
            ..CostModel::default()
        };
        cfg.elasticity = Some(crate::elasticity::ScalerConfig {
            d: 2,
            ..Default::default()
        });
        let mut eng = StreamingEngine::new(
            cfg,
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        // Ramp the rate so W crosses the threshold.
        let mut rate = 2000usize;
        let mut src = move |iv: Interval, out: &mut Vec<Tuple>| {
            rate += 400;
            let step = iv.len().0 / (rate as u64 + 1);
            for i in 0..rate {
                out.push(Tuple::keyed(
                    Time(iv.start.0 + step * (i as u64 + 1)),
                    Key(i as u64 % 64),
                ));
            }
        };
        let res = eng.run(&mut src, 30);
        assert!(
            !res.scale_events.is_empty(),
            "growing load must trigger scale-out"
        );
        assert!(res.scale_events.iter().any(|(_, a)| a.out));
        let last = res.batches.last().unwrap();
        assert!(
            last.map_tasks > 2 || last.reduce_tasks > 2,
            "parallelism should have grown"
        );
    }

    #[test]
    fn fixed_overhead_is_hidden_by_early_release() {
        let mut cfg = small_cfg();
        // 5% of 1 s = 50 ms slack; a 30 ms overhead hides entirely.
        cfg.overhead = OverheadMode::Fixed(Duration::from_millis(30));
        let mut eng = StreamingEngine::new(
            cfg,
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        let res = eng.run(&mut const_source(100, 5), 3);
        for b in &res.batches {
            assert_eq!(b.partition_overhead, Duration::from_millis(30));
            assert_eq!(b.visible_overhead, Duration::ZERO);
        }
        // A 80 ms overhead leaves 30 ms visible.
        let mut cfg = small_cfg();
        cfg.overhead = OverheadMode::Fixed(Duration::from_millis(80));
        let mut eng = StreamingEngine::new(
            cfg,
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        let res = eng.run(&mut const_source(100, 5), 3);
        for b in &res.batches {
            assert_eq!(b.visible_overhead, Duration::from_millis(30));
        }
    }

    #[test]
    fn fault_injection_recovers_exactly_once_answers() {
        use crate::recovery::FaultPlan;
        let run = |plan: FaultPlan| {
            let mut eng = StreamingEngine::new(
                small_cfg(),
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(WindowSpec::sliding(
                Duration::from_secs(3),
                Duration::from_secs(1),
            ))
            .with_fault_tolerance(2, plan);
            eng.run(&mut const_source(600, 12), 8)
        };
        let clean = run(FaultPlan::none());
        let faulty = run(FaultPlan::none().lose_once(2).lose_times(5, 2));
        assert_eq!(clean.recoveries, 0);
        assert_eq!(faulty.recoveries, 3);
        // Exactly-once: window answers identical despite the failures.
        assert_eq!(clean.windows.len(), faulty.windows.len());
        for (a, b) in clean.windows.iter().zip(&faulty.windows) {
            assert_eq!(a.aggregates.len(), b.aggregates.len());
            for (k, v) in &a.aggregates {
                assert_eq!(b.aggregates[k], *v);
            }
        }
        // Recovery work shows up in the affected batch's processing time.
        assert!(
            faulty.batches[2].processing > clean.batches[2].processing,
            "recomputation must cost time"
        );
        assert_eq!(faulty.batches[3].processing, clean.batches[3].processing);
    }

    #[test]
    #[should_panic(expected = "injected failure beyond recovery budget")]
    fn losing_more_than_replicas_is_fatal() {
        let mut eng = StreamingEngine::new(
            small_cfg(),
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        )
        .with_fault_tolerance(1, crate::recovery::FaultPlan::none().lose_times(1, 2));
        let _ = eng.run(&mut const_source(100, 5), 4);
    }

    #[test]
    fn injected_straggler_inflates_exactly_its_batch() {
        use crate::straggler::{Stage, StragglerPlan};
        let run = |plan: StragglerPlan| {
            let mut eng = StreamingEngine::new(
                small_cfg(),
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_stragglers(plan);
            eng.run(&mut const_source(800, 16), 6)
        };
        let clean = run(StragglerPlan::none());
        let slowed = run(StragglerPlan::none().slow(2, Stage::Reduce, 0, 10.0));
        for seq in 0..6 {
            if seq == 2 {
                assert!(
                    slowed.batches[seq].processing > clean.batches[seq].processing,
                    "straggler must slow batch 2"
                );
                assert!(
                    slowed.batches[seq].reduce_task_times[0]
                        > clean.batches[seq].reduce_task_times[0]
                );
            } else {
                assert_eq!(
                    slowed.batches[seq].processing, clean.batches[seq].processing,
                    "batch {seq} unaffected"
                );
            }
        }
        // The stage time follows the inflated max task (Eqn. 1).
        let b = &slowed.batches[2];
        assert_eq!(b.reduce_stage, *b.reduce_task_times.iter().max().unwrap());
    }

    #[test]
    fn run_summary_aggregates_the_run() {
        let mut eng = StreamingEngine::new(
            small_cfg(),
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        let res = eng.run(&mut const_source(500, 10), 8);
        let s = res.summary(Duration::from_secs(1));
        assert_eq!(s.batches, 8);
        assert_eq!(s.tuples, 4_000);
        assert!((s.throughput - 500.0).abs() < 1e-9);
        assert!(s.stable && !s.backpressure);
        assert_eq!(s.recoveries, 0);
        assert!(s.latency.mean > 1.0, "latency includes the interval");
        let text = s.to_string();
        assert!(text.contains("8 batches"));
        assert!(text.contains("stable: true"));
        assert!(!text.contains("[backpressure]"));
    }

    #[test]
    fn more_tasks_than_slots_run_in_waves() {
        // 8 map tasks on 2 slots: the map stage is the LPT makespan of 4
        // waves, ~4x the single-wave stage of 2 tasks on 2 slots.
        let run = |map_tasks: usize| {
            let cfg = EngineConfig {
                batch_interval: Duration::from_secs(1),
                map_tasks,
                reduce_tasks: 2,
                cluster: Cluster::new(1, 2),
                ..EngineConfig::default()
            };
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Shuffle,
                1,
                Job::identity("count", ReduceOp::Count),
            );
            eng.run(&mut const_source(8_000, 64), 2)
        };
        let narrow = run(2);
        let wide = run(8);
        let stage = |r: &RunResult| r.batches[1].map_stage.as_secs_f64();
        // Same total work split 8 ways on 2 slots: waves make the stage
        // roughly equal (fixed per-task cost adds a little on top).
        let ratio = stage(&wide) / stage(&narrow);
        assert!(
            (0.9..1.6).contains(&ratio),
            "8 tasks on 2 slots should wave-schedule: ratio {ratio}"
        );
        // And each individual wide task is ~4x cheaper than a narrow task.
        let max_task = |r: &RunResult| {
            r.batches[1]
                .map_task_times
                .iter()
                .max()
                .unwrap()
                .as_secs_f64()
        };
        assert!(max_task(&wide) < max_task(&narrow) * 0.5);
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        std::env::temp_dir().join(format!(
            "prompt-driver-{tag}-{}-{nanos}",
            std::process::id()
        ))
    }

    fn assert_windows_identical(a: &RunResult, b: &RunResult, what: &str) {
        assert_eq!(a.windows.len(), b.windows.len(), "{what}: window count");
        for (x, y) in a.windows.iter().zip(&b.windows) {
            assert_eq!(x.last_batch_seq, y.last_batch_seq, "{what}");
            assert_eq!(x.aggregates.len(), y.aggregates.len(), "{what}");
            for (k, v) in &x.aggregates {
                assert_eq!(y.aggregates[k], *v, "{what}: key {k:?}");
            }
        }
    }

    #[test]
    fn checkpointed_state_run_matches_plain_window_run() {
        let window = WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1));
        let plain = {
            let mut eng = StreamingEngine::new(
                small_cfg(),
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(window);
            eng.run(&mut const_source(400, 13), 8)
        };
        let dir = ckpt_dir("match");
        let ckpt = {
            let mut cfg = small_cfg();
            cfg.checkpoint = Some(crate::state::CheckpointConfig::new(&dir).interval(1));
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(window);
            eng.run(&mut const_source(400, 13), 8)
        };
        assert_windows_identical(&plain, &ckpt, "checkpoint on vs off");
        for (a, b) in plain.batches.iter().zip(&ckpt.batches) {
            assert_eq!(a.n_tuples, b.n_tuples);
            assert_eq!(a.n_keys, b.n_keys);
        }
        let stats = ckpt.state.expect("state layer was on");
        assert_eq!(stats.checkpoints, 8, "one commit per batch at interval 1");
        assert!(stats.snapshots >= 1, "first commit always snapshots");
        assert!(stats.checkpoint_bytes > 0);
        assert_eq!(stats.watermark, Some(7));
        assert!(plain.state.is_none(), "plain run has no state layer");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_recovery_recomputes_only_the_suffix() {
        // Window spans the whole run so the no-checkpoint variant retains
        // every batch and recompute-from-scratch stays feasible.
        let window = WindowSpec::sliding(Duration::from_secs(8), Duration::from_secs(1));
        let run = |ckpt: Option<crate::state::CheckpointConfig>, plan: FaultPlan| {
            let mut cfg = small_cfg();
            cfg.checkpoint = ckpt;
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(window)
            .with_stateful(StatefulOp::SessionCount)
            .with_fault_tolerance(2, plan);
            eng.run(&mut const_source(500, 11), 8)
        };
        let clean = run(None, FaultPlan::none());
        let scratch = run(None, FaultPlan::none().lose_store_at(6));
        let dir = ckpt_dir("suffix");
        let fast = run(
            Some(crate::state::CheckpointConfig::new(&dir).interval(1)),
            FaultPlan::none().lose_store_at(6),
        );
        assert_windows_identical(&clean, &scratch, "recompute-from-scratch");
        assert_windows_identical(&clean, &fast, "restore-from-checkpoint");
        let slow_stats = scratch.state.expect("state on");
        let fast_stats = fast.state.expect("state on");
        assert_eq!(slow_stats.restores, 1);
        assert_eq!(fast_stats.restores, 1);
        assert_eq!(
            slow_stats.recomputed_batches, 6,
            "no checkpoint: recompute everything before the loss"
        );
        assert!(
            fast_stats.recomputed_batches < slow_stats.recomputed_batches,
            "checkpoint must shrink the recompute suffix: {} vs {}",
            fast_stats.recomputed_batches,
            slow_stats.recomputed_batches
        );
        // Stateful emissions also survive the loss bit-identically.
        assert_eq!(clean.stateful.len(), fast.stateful.len());
        for (a, b) in clean.stateful.iter().zip(&fast.stateful) {
            for (k, v) in &a.aggregates {
                assert_eq!(b.aggregates[k], *v);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watermark_truncates_retained_inputs() {
        let window = WindowSpec::sliding(Duration::from_secs(8), Duration::from_secs(1));
        let run = |interval: usize| {
            let dir = ckpt_dir(&format!("trunc-{interval}"));
            let mut cfg = small_cfg();
            cfg.checkpoint = Some(crate::state::CheckpointConfig::new(&dir).interval(interval));
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(window);
            let res = eng.run(&mut const_source(300, 7), 8);
            let _ = std::fs::remove_dir_all(&dir);
            res.state.expect("state on")
        };
        let tight = run(1);
        let loose = run(4);
        // Interval 1: the commit after each batch truncates the store down
        // to nothing; the high-water mark is the single in-flight batch.
        assert!(
            tight.max_retained_batches <= 1,
            "interval 1 must retain at most the in-flight batch, got {}",
            tight.max_retained_batches
        );
        assert!(tight.max_retained_tuples <= 300);
        // Interval 4: up to 4 batches accumulate between commits.
        assert!(
            (2..=4).contains(&loose.max_retained_batches),
            "interval 4 retention out of range: {}",
            loose.max_retained_batches
        );
        assert!(loose.max_retained_tuples > tight.max_retained_tuples);
    }

    #[test]
    fn scale_migration_keeps_answers_bit_identical() {
        let window = WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1));
        let source = || {
            let mut rate = 2000usize;
            move |iv: Interval, out: &mut Vec<Tuple>| {
                rate += 400;
                let step = iv.len().0 / (rate as u64 + 1);
                for i in 0..rate {
                    out.push(Tuple::keyed(
                        Time(iv.start.0 + step * (i as u64 + 1)),
                        Key(i as u64 % 64),
                    ));
                }
            }
        };
        let run = |ckpt: Option<crate::state::CheckpointConfig>| {
            let mut cfg = small_cfg();
            cfg.map_tasks = 2;
            cfg.reduce_tasks = 2;
            cfg.cluster = Cluster::new(4, 4);
            cfg.cost = CostModel {
                map_per_tuple: Duration::from_micros(150),
                reduce_per_tuple: Duration::from_micros(150),
                ..CostModel::default()
            };
            cfg.elasticity = Some(crate::elasticity::ScalerConfig {
                d: 2,
                ..Default::default()
            });
            cfg.checkpoint = ckpt;
            let mut eng = StreamingEngine::new(
                cfg,
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(window);
            eng.run(&mut source(), 30)
        };
        let plain = run(None);
        assert!(
            plain.scale_events.iter().any(|(_, a)| a.out),
            "load ramp must trigger scale-out"
        );
        let dir = ckpt_dir("migrate");
        let ckpt = run(Some(crate::state::CheckpointConfig::new(&dir).interval(2)));
        assert_windows_identical(&plain, &ckpt, "migration vs serial window");
        let stats = ckpt.state.expect("state on");
        assert!(stats.migrations >= 1, "scale-out must migrate shards");
        assert!(stats.migrated_keys > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_checkpoint_continues_the_stream() {
        let window = WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1));
        let mk = |ckpt: Option<crate::state::CheckpointConfig>| {
            StreamingEngine::new(
                {
                    let mut cfg = small_cfg();
                    cfg.checkpoint = ckpt;
                    cfg
                },
                Technique::Prompt,
                1,
                Job::identity("count", ReduceOp::Count),
            )
            .with_window(window)
        };
        let uninterrupted = mk(None).run(&mut const_source(400, 9), 12);
        let dir = ckpt_dir("resume");
        let first = mk(Some(crate::state::CheckpointConfig::new(&dir).interval(1)))
            .run(&mut const_source(400, 9), 8);
        assert_eq!(first.state.expect("state on").watermark, Some(7));
        let second = mk(Some(
            crate::state::CheckpointConfig::new(&dir)
                .interval(1)
                .resume(),
        ))
        .run(&mut const_source(400, 9), 12);
        // Batches 0..=7 are skipped (already durable); only the suffix runs.
        assert_eq!(second.batches.len(), 4);
        let stats = second.state.expect("state on");
        assert_eq!(stats.restores, 1);
        assert_eq!(stats.recomputed_batches, 0, "resume recomputes nothing");
        // The resumed suffix emits exactly the uninterrupted run's windows.
        let want: Vec<&WindowResult> = uninterrupted
            .windows
            .iter()
            .filter(|w| w.last_batch_seq >= 8)
            .collect();
        assert_eq!(second.windows.len(), want.len());
        for (got, want) in second.windows.iter().zip(want) {
            assert_eq!(got.last_batch_seq, want.last_batch_seq);
            for (k, v) in &want.aggregates {
                assert_eq!(got.aggregates[k], *v);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stateful_operator_emits_alongside_windows() {
        let mut eng = StreamingEngine::new(
            small_cfg(),
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        )
        .with_window(WindowSpec::sliding(
            Duration::from_secs(3),
            Duration::from_secs(1),
        ))
        .with_stateful(StatefulOp::SessionCount);
        let res = eng.run(&mut const_source(300, 5), 6);
        assert_eq!(res.stateful.len(), res.windows.len());
        // Every key appears in every batch, so once warm the session count
        // is the window length in batches.
        let last = res.stateful.last().unwrap();
        assert_eq!(last.aggregates.len(), 5);
        for k in 0..5u64 {
            assert_eq!(last.aggregates[&Key(k)], 3.0, "key {k}");
        }
        // Warm-up: the first emission has seen only one batch.
        assert_eq!(res.stateful[0].aggregates[&Key(0)], 1.0);
    }

    #[test]
    fn columnar_runs_bit_identical_to_row() {
        for backend in [Backend::InProcess, Backend::Threaded { threads: 3 }] {
            let run = |columnar: bool| {
                let cfg = EngineConfig {
                    backend,
                    columnar,
                    ..small_cfg()
                };
                let mut eng = StreamingEngine::new(
                    cfg,
                    Technique::Prompt,
                    1,
                    Job::identity("count", ReduceOp::Count),
                )
                .with_window(WindowSpec::sliding(
                    Duration::from_secs(3),
                    Duration::from_secs(1),
                ));
                eng.run(&mut const_source(600, 12), 6)
            };
            let row = run(false);
            let col = run(true);
            assert_eq!(row.batches.len(), col.batches.len());
            for (a, b) in row.batches.iter().zip(&col.batches) {
                assert_eq!(a.n_tuples, b.n_tuples, "{backend:?} seq {}", a.seq);
                assert_eq!(a.map_stage, b.map_stage, "{backend:?} seq {}", a.seq);
                assert_eq!(a.reduce_stage, b.reduce_stage, "{backend:?} seq {}", a.seq);
                assert_eq!(a.processing, b.processing, "{backend:?} seq {}", a.seq);
            }
            assert_eq!(row.windows.len(), col.windows.len());
            for (a, b) in row.windows.iter().zip(&col.windows) {
                assert_eq!(a.aggregates.len(), b.aggregates.len());
                for (k, v) in &a.aggregates {
                    assert_eq!(
                        b.aggregates[k].to_bits(),
                        v.to_bits(),
                        "{backend:?} key {k:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn replay_partitions_the_retained_buffer_without_copying() {
        use std::sync::{Arc, Mutex};
        // Delegating probe: records the allocation every shared-replay
        // partition call sees, so the test can prove recovery hands out the
        // retained buffer itself rather than a per-replay deep clone.
        struct ProbePartitioner {
            inner: Box<dyn Partitioner>,
            shared: Arc<Mutex<Vec<usize>>>,
        }
        impl Partitioner for ProbePartitioner {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn partition_slice(
                &mut self,
                tuples: &[Tuple],
                interval: Interval,
                p: usize,
            ) -> PartitionPlan {
                self.inner.partition_slice(tuples, interval, p)
            }
            fn partition_shared(
                &mut self,
                tuples: &Arc<[Tuple]>,
                interval: Interval,
                p: usize,
            ) -> PartitionPlan {
                self.shared.lock().unwrap().push(tuples.as_ptr() as usize);
                self.inner.partition_slice(tuples, interval, p)
            }
        }
        let shared = Arc::new(Mutex::new(Vec::new()));
        let probe = ProbePartitioner {
            inner: Technique::Prompt.build(1),
            shared: Arc::clone(&shared),
        };
        let mut eng = StreamingEngine::with_parts(
            small_cfg(),
            Box::new(probe),
            Box::new(PromptReduceAllocator::new(1)),
            Job::identity("count", ReduceOp::Count),
        )
        .with_fault_tolerance(2, FaultPlan::none().lose_times(2, 2));
        let res = eng.run(&mut const_source(400, 8), 5);
        assert_eq!(res.recoveries, 2);
        let ptrs = shared.lock().unwrap();
        assert_eq!(
            ptrs.len(),
            2,
            "each injected loss replays via partition_shared"
        );
        assert_eq!(
            ptrs[0], ptrs[1],
            "both replays must see the same retained allocation — no deep copy"
        );
    }

    #[test]
    fn steady_state_mean_uses_second_half() {
        let mut eng = StreamingEngine::new(
            small_cfg(),
            Technique::Hash,
            1,
            Job::identity("count", ReduceOp::Count),
        );
        let res = eng.run(&mut const_source(100, 5), 8);
        let mean = res.steady_state_mean(|b| b.n_tuples as f64);
        assert_eq!(mean, 100.0);
        assert_eq!(RunResult::default().steady_state_mean(|b| b.w), 0.0);
    }
}
