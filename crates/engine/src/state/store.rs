//! The sharded keyed state store.
//!
//! [`KeyedStateStore`] holds the same windowed query state as
//! [`crate::window::WindowState`], but split into per-bucket shards so the
//! state can be snapshotted, shipped, and re-sharded independently of the
//! processing path. Bit-identity with the serial window is load-bearing:
//! every per-key floating-point operation happens in exactly the order
//! `WindowState::push` would perform it, so a run that checkpoints (or
//! migrates) produces the same window results, bit for bit, as one that
//! does not.
//!
//! Sharding uses the store's own fixed seed, not the reduce allocator's
//! bucket assignment: the allocator's mapping is mutable run state (split
//! keys move between buckets as skew evolves), while a durable store needs a
//! placement that any restarted or newly joined node can recompute from the
//! key alone.

use std::collections::VecDeque;

use prompt_core::bytes::{ByteReader, ByteWriter, BytesSink, CodecError};
use prompt_core::hash::{bucket_of, KeyMap};
use prompt_core::types::{Duration, Key};

use crate::job::ReduceOp;
use crate::stage::BatchOutput;
use crate::window::{WindowResult, WindowSpec};

/// Fixed hash seed for state-shard placement. Stable across runs and
/// processes — restore and migration must agree on where a key lives.
pub const STATE_SHARD_SEED: u64 = 0x5354_4154_4553_4844; // "STATESHD"

/// One batch's contribution to one shard: the per-key mapped aggregates,
/// sorted by key (canonical order, like `put_plan`'s split keys).
pub type Pane = Vec<(Key, f64)>;

/// One state shard: the running aggregates and in-window panes for the keys
/// that hash to its bucket.
#[derive(Clone, Debug, Default)]
pub struct StateShard {
    /// The shard's bucket index (its position in the store).
    pub(crate) bucket: u32,
    /// Running per-key aggregate with contribution counts (invertible
    /// operations only — mirrors `WindowState::running`).
    pub(crate) running: KeyMap<(f64, u32)>,
    /// In-window panes, oldest first. Every push appends one pane to every
    /// shard (possibly empty), so pane indices align across shards.
    pub(crate) panes: VecDeque<Pane>,
}

impl StateShard {
    fn empty(bucket: u32, n_panes: usize) -> StateShard {
        StateShard {
            bucket,
            running: KeyMap::default(),
            panes: (0..n_panes).map(|_| Pane::new()).collect(),
        }
    }

    /// Distinct keys present in this shard (running entries for invertible
    /// operations, pane membership otherwise).
    pub fn key_count(&self) -> usize {
        if !self.running.is_empty() {
            return self.running.len();
        }
        let mut keys = prompt_core::hash::KeySet::default();
        for pane in &self.panes {
            for &(k, _) in pane {
                keys.insert(k);
            }
        }
        keys.len()
    }
}

/// One batch's state change, split by shard — the changelog record. Replaying
/// a delta against the store it was captured from reproduces the push
/// bit-exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct StateDelta {
    /// Sequence number of the batch this delta applies to (the store's `seq`
    /// at capture time).
    pub seq: u64,
    /// `(bucket, sorted entries)` for every shard the batch touched.
    pub shards: Vec<(u32, Pane)>,
}

/// Keyed window state sharded by bucket. See the module docs for the
/// bit-identity contract.
#[derive(Clone, Debug)]
pub struct KeyedStateStore {
    op: ReduceOp,
    len_batches: usize,
    slide_batches: usize,
    shards: Vec<StateShard>,
    seq: u64,
    since_emit: usize,
}

impl KeyedStateStore {
    /// Create a store for `spec` over batches of `batch_interval`, sharded
    /// `r` ways.
    pub fn new(
        spec: WindowSpec,
        batch_interval: Duration,
        op: ReduceOp,
        r: usize,
    ) -> KeyedStateStore {
        assert!(r >= 1, "state store needs at least one shard");
        let (len_batches, slide_batches) = spec.in_batches(batch_interval);
        KeyedStateStore {
            op,
            len_batches,
            slide_batches,
            shards: (0..r).map(|b| StateShard::empty(b as u32, 0)).collect(),
            seq: 0,
            since_emit: 0,
        }
    }

    /// Window length in batches.
    pub fn len_batches(&self) -> usize {
        self.len_batches
    }

    /// The reduce aggregation this store maintains.
    pub fn op(&self) -> ReduceOp {
        self.op
    }

    /// Number of shards (tracks the reduce task count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Batches pushed so far (equivalently: the next batch's sequence
    /// number).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The shard a key lives in.
    pub fn shard_of(&self, key: Key) -> usize {
        bucket_of(STATE_SHARD_SEED, key, self.shards.len())
    }

    /// Borrow the shards (for snapshots and migration reports).
    pub fn shards(&self) -> &[StateShard] {
        &self.shards
    }

    /// Distinct keys with live state across all shards.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(StateShard::key_count).sum()
    }

    /// Hand the shard set off for re-sharding (migration). The caller must
    /// `install_shards` a replacement before the store is used again.
    pub(crate) fn take_shards(&mut self) -> Vec<StateShard> {
        std::mem::take(&mut self.shards)
    }

    /// Install a re-sharded set (migration).
    pub(crate) fn install_shards(&mut self, shards: Vec<StateShard>) {
        debug_assert!(!shards.is_empty(), "store needs at least one shard");
        self.shards = shards;
    }

    /// Push one batch output; returns the window result at slide boundaries.
    pub fn push(&mut self, out: &BatchOutput) -> Option<WindowResult> {
        self.push_with_delta(out).0
    }

    /// Push one batch output, also returning the changelog delta that
    /// describes the change.
    pub fn push_with_delta(&mut self, out: &BatchOutput) -> (Option<WindowResult>, StateDelta) {
        let r = self.shards.len();
        let mut split: Vec<Pane> = vec![Pane::new(); r];
        for (&k, &v) in &out.aggregates {
            split[bucket_of(STATE_SHARD_SEED, k, r)].push((k, v));
        }
        for entries in &mut split {
            entries.sort_unstable_by_key(|&(k, _)| k.0);
        }
        let delta = StateDelta {
            seq: self.seq,
            shards: split
                .iter()
                .enumerate()
                .filter(|(_, e)| !e.is_empty())
                .map(|(b, e)| (b as u32, e.clone()))
                .collect(),
        };
        (self.apply_panes(split), delta)
    }

    /// Replay a previously captured delta (checkpoint restore). The delta
    /// must be the next batch in sequence.
    pub fn apply_delta(&mut self, delta: &StateDelta) -> Option<WindowResult> {
        assert_eq!(delta.seq, self.seq, "delta replayed out of order");
        let mut split: Vec<Pane> = vec![Pane::new(); self.shards.len()];
        for (b, entries) in &delta.shards {
            split[*b as usize] = entries.clone();
        }
        self.apply_panes(split)
    }

    /// The shard-wise mirror of `WindowState::push`: merge each shard's
    /// entries into its running state in sorted-key order, append the pane,
    /// evict the batch leaving the window.
    fn apply_panes(&mut self, split: Vec<Pane>) -> Option<WindowResult> {
        let op = self.op;
        let invertible = op.invertible();
        let len_batches = self.len_batches;
        for (shard, entries) in self.shards.iter_mut().zip(split) {
            if invertible {
                for &(k, v) in &entries {
                    let e = shard.running.entry(k).or_insert((0.0, 0));
                    e.0 = if e.1 == 0 { v } else { op.merge(e.0, v) };
                    e.1 += 1;
                }
            }
            shard.panes.push_back(entries);
            if shard.panes.len() > len_batches {
                let old = shard.panes.pop_front().expect("pane non-empty");
                if invertible {
                    for (k, v) in old {
                        let e = shard.running.get_mut(&k).expect("evicted key tracked");
                        e.1 -= 1;
                        if e.1 == 0 {
                            shard.running.remove(&k);
                        } else {
                            e.0 = op.invert(e.0, v);
                        }
                    }
                }
            }
        }
        self.seq += 1;
        self.since_emit += 1;
        if self.since_emit >= self.slide_batches {
            self.since_emit = 0;
            Some(WindowResult {
                last_batch_seq: self.seq - 1,
                aggregates: self.current(),
            })
        } else {
            None
        }
    }

    /// The current window aggregate (incremental when invertible, recomputed
    /// from the panes otherwise) — per-key bits identical to
    /// `WindowState::current`.
    pub fn current(&self) -> KeyMap<f64> {
        let op = self.op;
        let mut acc: KeyMap<f64> = KeyMap::default();
        if op.invertible() {
            for shard in &self.shards {
                for (&k, &(v, _)) in &shard.running {
                    acc.insert(k, v);
                }
            }
        } else {
            for shard in &self.shards {
                for pane in &shard.panes {
                    for &(k, v) in pane {
                        acc.entry(k)
                            .and_modify(|a| *a = op.merge(*a, v))
                            .or_insert(v);
                    }
                }
            }
        }
        acc
    }

    /// Per-key count of in-window batches the key appeared in — the
    /// "session count" the stateful query operator exposes. Derived from
    /// pane membership, so it works for every `ReduceOp`.
    pub fn session_counts(&self) -> KeyMap<f64> {
        let mut acc: KeyMap<f64> = KeyMap::default();
        for shard in &self.shards {
            for pane in &shard.panes {
                for &(k, _) in pane {
                    *acc.entry(k).or_insert(0.0) += 1.0;
                }
            }
        }
        acc
    }
}

/// Encode one shard: running entries in sorted key order, then the panes
/// (already sorted) oldest first.
pub fn put_shard<S: BytesSink>(s: &mut S, shard: &StateShard) {
    s.put_u32(shard.bucket);
    let mut running: Vec<(Key, (f64, u32))> = shard.running.iter().map(|(&k, &e)| (k, e)).collect();
    running.sort_unstable_by_key(|&(k, _)| k.0);
    s.put_len(running.len());
    for (k, (v, c)) in running {
        s.put_u64(k.0);
        s.put_f64(v);
        s.put_u32(c);
    }
    s.put_len(shard.panes.len());
    for pane in &shard.panes {
        s.put_len(pane.len());
        for &(k, v) in pane {
            s.put_u64(k.0);
            s.put_f64(v);
        }
    }
}

/// Decode one shard.
pub fn get_shard(r: &mut ByteReader<'_>) -> Result<StateShard, CodecError> {
    let bucket = r.get_u32()?;
    let n_running = r.get_len(20)?;
    let mut running = KeyMap::default();
    for _ in 0..n_running {
        let k = Key(r.get_u64()?);
        let v = r.get_f64()?;
        let c = r.get_u32()?;
        if c == 0 {
            return Err(CodecError::Malformed("zero contribution count"));
        }
        running.insert(k, (v, c));
    }
    let n_panes = r.get_len(4)?;
    let mut panes = VecDeque::with_capacity(n_panes);
    for _ in 0..n_panes {
        let n = r.get_len(16)?;
        let mut pane = Pane::with_capacity(n);
        let mut last: Option<u64> = None;
        for _ in 0..n {
            let k = r.get_u64()?;
            if last.is_some_and(|p| p >= k) {
                return Err(CodecError::Malformed("pane keys not strictly sorted"));
            }
            last = Some(k);
            pane.push((Key(k), r.get_f64()?));
        }
        panes.push_back(pane);
    }
    Ok(StateShard {
        bucket,
        running,
        panes,
    })
}

/// Encode a whole store (the snapshot payload).
pub fn put_store<S: BytesSink>(s: &mut S, store: &KeyedStateStore) {
    s.put_u8(store.op.wire_code());
    s.put_u32(store.len_batches as u32);
    s.put_u32(store.slide_batches as u32);
    s.put_u64(store.seq);
    s.put_u32(store.since_emit as u32);
    s.put_len(store.shards.len());
    for shard in &store.shards {
        put_shard(s, shard);
    }
}

/// Decode a whole store.
pub fn get_store(r: &mut ByteReader<'_>) -> Result<KeyedStateStore, CodecError> {
    let op = ReduceOp::from_wire_code(r.get_u8()?).ok_or(CodecError::Malformed("reduce op tag"))?;
    let len_batches = r.get_u32()? as usize;
    let slide_batches = r.get_u32()? as usize;
    if len_batches == 0 || slide_batches == 0 || slide_batches > len_batches {
        return Err(CodecError::Malformed("window geometry"));
    }
    let seq = r.get_u64()?;
    let since_emit = r.get_u32()? as usize;
    if since_emit >= slide_batches {
        return Err(CodecError::Malformed("since_emit past slide"));
    }
    let n_shards = r.get_len(12)?;
    if n_shards == 0 {
        return Err(CodecError::Malformed("store needs at least one shard"));
    }
    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let shard = get_shard(r)?;
        if shard.bucket != i as u32 {
            return Err(CodecError::Malformed("shard buckets out of order"));
        }
        if shard.panes.len() > len_batches {
            return Err(CodecError::Malformed("more panes than window length"));
        }
        shards.push(shard);
    }
    Ok(KeyedStateStore {
        op,
        len_batches,
        slide_batches,
        shards,
        seq,
        since_emit,
    })
}

/// Encode a changelog delta.
pub fn put_delta<S: BytesSink>(s: &mut S, d: &StateDelta) {
    s.put_u64(d.seq);
    s.put_len(d.shards.len());
    for (b, entries) in &d.shards {
        s.put_u32(*b);
        s.put_len(entries.len());
        for &(k, v) in entries {
            s.put_u64(k.0);
            s.put_f64(v);
        }
    }
}

/// Decode a changelog delta.
pub fn get_delta(r: &mut ByteReader<'_>) -> Result<StateDelta, CodecError> {
    let seq = r.get_u64()?;
    let n = r.get_len(8)?;
    let mut shards = Vec::with_capacity(n);
    let mut last_bucket: Option<u32> = None;
    for _ in 0..n {
        let b = r.get_u32()?;
        if last_bucket.is_some_and(|p| p >= b) {
            return Err(CodecError::Malformed("delta buckets not strictly sorted"));
        }
        last_bucket = Some(b);
        let n_entries = r.get_len(16)?;
        if n_entries == 0 {
            return Err(CodecError::Malformed("empty delta shard"));
        }
        let mut pane = Pane::with_capacity(n_entries);
        let mut last: Option<u64> = None;
        for _ in 0..n_entries {
            let k = r.get_u64()?;
            if last.is_some_and(|p| p >= k) {
                return Err(CodecError::Malformed("delta keys not strictly sorted"));
            }
            last = Some(k);
            pane.push((Key(k), r.get_f64()?));
        }
        shards.push((b, pane));
    }
    Ok(StateDelta { seq, shards })
}

/// Encoded length of a value in bytes, without materializing the buffer.
pub(crate) struct CountingSink(pub usize);

impl BytesSink for CountingSink {
    fn put_bytes(&mut self, bytes: &[u8]) {
        self.0 += bytes.len();
    }
}

impl KeyedStateStore {
    /// Encoded size of the whole store in bytes (what a snapshot would
    /// write).
    pub fn encoded_len(&self) -> usize {
        let mut c = CountingSink(0);
        put_store(&mut c, self);
        c.0
    }

    /// Encode one shard to bytes (the migration wire payload).
    pub fn encode_shard(&self, bucket: usize) -> Vec<u8> {
        let mut w = ByteWriter::new();
        put_shard(&mut w, &self.shards[bucket]);
        w.into_bytes()
    }

    /// Encode one key-group's state slice to bytes (the rebalancer's
    /// `GroupPush` wire payload).
    ///
    /// State sharding (fixed [`STATE_SHARD_SEED`]) is independent of the
    /// rebalancer's key-grouping, so a group's keys are scattered across
    /// shards: the slice is collected by scanning every shard and keeping
    /// the entries whose key hashes into `group`. Layout mirrors
    /// [`put_shard`] — group id, sorted running entries, then one
    /// key-sorted pane per in-window batch (pane indices align across
    /// shards, so pane `i` of the slice is the group's contribution to
    /// batch `i` of the window).
    pub fn encode_group(&self, group: u32, n_groups: usize) -> Vec<u8> {
        let in_group = |k: Key| crate::rebalance::group_of(k, n_groups) == group as usize;
        let mut running: Vec<(Key, (f64, u32))> = self
            .shards
            .iter()
            .flat_map(|s| s.running.iter().map(|(&k, &e)| (k, e)))
            .filter(|&(k, _)| in_group(k))
            .collect();
        running.sort_unstable_by_key(|&(k, _)| k.0);
        let n_panes = self.shards.first().map_or(0, |s| s.panes.len());
        let mut w = ByteWriter::new();
        w.put_u32(group);
        w.put_len(running.len());
        for (k, (v, c)) in running {
            w.put_u64(k.0);
            w.put_f64(v);
            w.put_u32(c);
        }
        w.put_len(n_panes);
        for i in 0..n_panes {
            let mut pane: Pane = self
                .shards
                .iter()
                .flat_map(|s| s.panes[i].iter().copied())
                .filter(|&(k, _)| in_group(k))
                .collect();
            pane.sort_unstable_by_key(|&(k, _)| k.0);
            w.put_len(pane.len());
            for (k, v) in pane {
                w.put_u64(k.0);
                w.put_f64(v);
            }
        }
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowState;

    fn out(entries: &[(u64, f64)]) -> BatchOutput {
        let mut aggregates = KeyMap::default();
        for &(k, v) in entries {
            aggregates.insert(Key(k), v);
        }
        BatchOutput { aggregates }
    }

    fn batches(n: usize, keys: u64) -> Vec<BatchOutput> {
        (0..n)
            .map(|i| {
                let entries: Vec<(u64, f64)> = (0..keys)
                    .filter(|k| !(i as u64 + k).is_multiple_of(3))
                    .map(|k| (k, (i as f64 + 1.0) * 0.1 + k as f64))
                    .collect();
                out(&entries)
            })
            .collect()
    }

    fn spec() -> WindowSpec {
        WindowSpec::sliding(Duration::from_secs(4), Duration::from_secs(2))
    }

    #[test]
    fn store_matches_window_state_bit_for_bit() {
        for op in [ReduceOp::Sum, ReduceOp::Count, ReduceOp::Max, ReduceOp::Min] {
            let mut window = WindowState::new(spec(), Duration::from_secs(1), op);
            let mut store = KeyedStateStore::new(spec(), Duration::from_secs(1), op, 4);
            for b in batches(12, 9) {
                let expect = window.push(b.clone());
                let got = store.push(&b);
                match (expect, got) {
                    (None, None) => {}
                    (Some(e), Some(g)) => {
                        assert_eq!(e.last_batch_seq, g.last_batch_seq);
                        assert_eq!(e.aggregates.len(), g.aggregates.len(), "{op:?}");
                        for (k, v) in &e.aggregates {
                            assert_eq!(
                                v.to_bits(),
                                g.aggregates[k].to_bits(),
                                "{op:?} key {k:?} differs"
                            );
                        }
                    }
                    (e, g) => panic!("emission mismatch: {e:?} vs {g:?}"),
                }
            }
        }
    }

    #[test]
    fn delta_replay_reproduces_push() {
        let mut live = KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Sum, 3);
        let mut replayed = live.clone();
        for b in batches(10, 7) {
            let (_, delta) = live.push_with_delta(&b);
            replayed.apply_delta(&delta);
        }
        let a = live.current();
        let b = replayed.current();
        assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            assert_eq!(v.to_bits(), b[k].to_bits());
        }
    }

    #[test]
    fn store_round_trips_through_codec() {
        let mut store = KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Sum, 5);
        for b in batches(7, 11) {
            store.push(&b);
        }
        let mut w = ByteWriter::new();
        put_store(&mut w, &store);
        assert_eq!(w.len(), store.encoded_len());
        let mut r = ByteReader::new(w.as_bytes());
        let back = get_store(&mut r).unwrap();
        r.expect_empty().unwrap();
        assert_eq!(back.seq(), store.seq());
        assert_eq!(back.shard_count(), store.shard_count());
        let a = store.current();
        let b = back.current();
        assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            assert_eq!(v.to_bits(), b[k].to_bits());
        }
        // And the decoded store keeps evolving identically.
        let extra = out(&[(3, 1.25), (100, -2.5)]);
        let mut s1 = store.clone();
        let mut s2 = back;
        assert_eq!(
            s1.push(&extra).map(|r| r.last_batch_seq),
            s2.push(&extra).map(|r| r.last_batch_seq)
        );
    }

    #[test]
    fn session_counts_track_pane_membership() {
        let mut store = KeyedStateStore::new(
            WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1)),
            Duration::from_secs(1),
            ReduceOp::Max,
            2,
        );
        store.push(&out(&[(1, 5.0)]));
        store.push(&out(&[(1, 5.0), (2, 1.0)]));
        store.push(&out(&[(2, 1.0)]));
        let counts = store.session_counts();
        assert_eq!(counts[&Key(1)], 2.0);
        assert_eq!(counts[&Key(2)], 2.0);
        // Window length 3: the first batch evicts on the fourth push.
        store.push(&out(&[]));
        let counts = store.session_counts();
        assert_eq!(counts[&Key(1)], 1.0);
    }

    #[test]
    fn group_slices_partition_the_store() {
        let n_groups = 8;
        let mut store = KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Sum, 3);
        for b in batches(6, 20) {
            store.push(&b);
        }
        // Decode every group's slice; together they must cover each running
        // key exactly once, with keys sorted within a slice.
        let mut seen = prompt_core::hash::KeySet::default();
        let mut total_running = 0usize;
        for g in 0..n_groups {
            let bytes = store.encode_group(g as u32, n_groups);
            let mut r = ByteReader::new(&bytes);
            assert_eq!(r.get_u32().unwrap(), g as u32);
            let n_running = r.get_len(16).unwrap();
            let mut prev: Option<u64> = None;
            for _ in 0..n_running {
                let k = r.get_u64().unwrap();
                let _v = r.get_f64().unwrap();
                let _c = r.get_u32().unwrap();
                assert!(prev.is_none_or(|p| p < k), "slice keys sorted");
                prev = Some(k);
                assert_eq!(crate::rebalance::group_of(Key(k), n_groups), g);
                assert!(seen.insert(Key(k)), "key in two slices");
                total_running += 1;
            }
            // Pane count matches the store's window depth for every group.
            let n_panes = r.get_len(4).unwrap();
            assert_eq!(n_panes, store.shards()[0].panes.len());
        }
        assert_eq!(total_running, store.key_count());
    }

    #[test]
    fn keys_land_on_their_hashed_shard() {
        let store = KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Sum, 7);
        for k in 0..100 {
            let s = store.shard_of(Key(k));
            assert!(s < 7);
            assert_eq!(s, bucket_of(STATE_SHARD_SEED, Key(k), 7));
        }
    }
}
