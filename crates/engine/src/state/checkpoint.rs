//! Incremental checkpointing: changelog deltas, periodic snapshots, and a
//! CRC-validated manifest.
//!
//! ## File layout
//!
//! A checkpointed job owns one directory:
//!
//! ```text
//! <dir>/snapshot-<seq>.ckpt   one Snapshot frame: the whole store
//! <dir>/changelog.ckpt        Delta frames appended since that snapshot
//! <dir>/MANIFEST              one Manifest frame, replaced atomically
//! ```
//!
//! ## Frame format
//!
//! Every record is a self-checking frame:
//!
//! ```text
//! [magic u32 "PCKP"] [version u8] [kind u8] [payload-len u32] [payload] [crc32 u32]
//! ```
//!
//! The CRC covers header *and* payload, so a torn header, a torn payload,
//! or a frame from a different version all fail closed. The manifest is the
//! commit point: it records the snapshot file and exactly how many changelog
//! bytes/frames are durable, and is replaced via write-to-temp + rename.
//! Changelog bytes past the manifest's committed length are an aborted
//! commit and are ignored on restore.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use prompt_core::bytes::{crc32, ByteReader, ByteWriter, BytesSink, CodecError};

use super::store::{get_delta, get_store, put_delta, put_store, KeyedStateStore, StateDelta};

/// Checkpoint frame magic: "PCKP" little-endian.
pub const CHECKPOINT_MAGIC: u32 = u32::from_le_bytes(*b"PCKP");

/// Checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Frame header length: magic + version + kind + payload length.
pub const FRAME_HEADER_LEN: usize = 10;

/// Frame trailer length: the CRC.
pub const FRAME_TRAILER_LEN: usize = 4;

/// Refuse frames above this payload size (a corrupt length field must not
/// drive a giant allocation).
pub const MAX_FRAME_PAYLOAD: u32 = 256 * 1024 * 1024;

/// Frame record kinds.
pub mod frame_kind {
    /// A full-store snapshot.
    pub const SNAPSHOT: u8 = 1;
    /// A per-batch changelog delta.
    pub const DELTA: u8 = 2;
    /// The manifest (commit record).
    pub const MANIFEST: u8 = 3;
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Frame did not start with the checkpoint magic.
    BadMagic(u32),
    /// Frame written by an incompatible format version.
    BadVersion(u8),
    /// Unknown frame kind, or a kind that is invalid where it appeared.
    BadRecord(u8),
    /// CRC mismatch: the frame bytes are corrupt.
    BadCrc {
        /// CRC stored in the frame trailer.
        expected: u32,
        /// CRC recomputed over the frame bytes.
        actual: u32,
    },
    /// Fewer bytes than a whole frame.
    TruncatedFrame {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes actually present.
        available: usize,
    },
    /// Payload length field exceeds [`MAX_FRAME_PAYLOAD`].
    FrameTooLarge(u32),
    /// Payload failed to decode.
    Codec(CodecError),
    /// Files are individually valid but mutually inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io: {e}"),
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#010x}"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::BadRecord(k) => write!(f, "unexpected checkpoint record kind {k}"),
            CheckpointError::BadCrc { expected, actual } => {
                write!(
                    f,
                    "checkpoint crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
                )
            }
            CheckpointError::TruncatedFrame { needed, available } => {
                write!(
                    f,
                    "truncated checkpoint frame: needed {needed} bytes, had {available}"
                )
            }
            CheckpointError::FrameTooLarge(n) => {
                write!(f, "checkpoint frame payload {n} too large")
            }
            CheckpointError::Codec(e) => write!(f, "checkpoint payload: {e}"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> CheckpointError {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> CheckpointError {
        CheckpointError::Codec(e)
    }
}

/// Encode one frame: header, payload, CRC trailer.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD as usize,
        "checkpoint frame payload over cap"
    );
    let mut w = ByteWriter::with_capacity(FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN);
    w.put_u32(CHECKPOINT_MAGIC);
    w.put_u8(CHECKPOINT_VERSION);
    w.put_u8(kind);
    w.put_u32(payload.len() as u32);
    w.put_bytes(payload);
    let crc = crc32(w.as_bytes());
    w.put_u32(crc);
    w.into_bytes()
}

/// Decode the frame at the front of `buf`. Returns `(kind, payload, bytes
/// consumed)`; the caller advances by the consumed length to read a frame
/// sequence.
pub fn decode_frame(buf: &[u8]) -> Result<(u8, &[u8], usize), CheckpointError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(CheckpointError::TruncatedFrame {
            needed: FRAME_HEADER_LEN,
            available: buf.len(),
        });
    }
    let mut r = ByteReader::new(&buf[..FRAME_HEADER_LEN]);
    let magic = r.get_u32().expect("header length checked");
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let version = r.get_u8().expect("header length checked");
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let kind = r.get_u8().expect("header length checked");
    if !matches!(
        kind,
        frame_kind::SNAPSHOT | frame_kind::DELTA | frame_kind::MANIFEST
    ) {
        return Err(CheckpointError::BadRecord(kind));
    }
    let payload_len = r.get_u32().expect("header length checked");
    if payload_len > MAX_FRAME_PAYLOAD {
        return Err(CheckpointError::FrameTooLarge(payload_len));
    }
    let total = FRAME_HEADER_LEN + payload_len as usize + FRAME_TRAILER_LEN;
    if buf.len() < total {
        return Err(CheckpointError::TruncatedFrame {
            needed: total,
            available: buf.len(),
        });
    }
    let body = &buf[..FRAME_HEADER_LEN + payload_len as usize];
    let stored = u32::from_le_bytes(
        buf[FRAME_HEADER_LEN + payload_len as usize..total]
            .try_into()
            .expect("trailer length checked"),
    );
    let actual = crc32(body);
    if stored != actual {
        return Err(CheckpointError::BadCrc {
            expected: stored,
            actual,
        });
    }
    Ok((kind, &body[FRAME_HEADER_LEN..], total))
}

/// Checkpointing policy and location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Per-job checkpoint directory (created on first use).
    pub dir: PathBuf,
    /// Batches between commits. `1` commits every batch.
    pub interval: usize,
    /// Commits between full snapshots; commits in between append changelog
    /// deltas only. `1` snapshots on every commit.
    pub snapshot_every: usize,
    /// On startup, restore from an existing checkpoint in `dir` (a restarted
    /// run) instead of starting fresh.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint into `dir`, committing every batch, snapshotting every
    /// eighth commit.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            interval: 1,
            snapshot_every: 8,
            resume: false,
        }
    }

    /// Set the commit interval in batches.
    pub fn interval(mut self, batches: usize) -> CheckpointConfig {
        self.interval = batches;
        self
    }

    /// Set the snapshot cadence in commits.
    pub fn snapshot_every(mut self, commits: usize) -> CheckpointConfig {
        self.snapshot_every = commits;
        self
    }

    /// Restore from `dir` on startup if a valid checkpoint exists.
    pub fn resume(mut self) -> CheckpointConfig {
        self.resume = true;
        self
    }

    /// Validate the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == 0 {
            return Err("checkpoint interval must be positive".into());
        }
        if self.snapshot_every == 0 {
            return Err("checkpoint snapshot cadence must be positive".into());
        }
        if self.dir.as_os_str().is_empty() {
            return Err("checkpoint directory must be set".into());
        }
        Ok(())
    }
}

/// Cumulative checkpoint I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Commits (manifest replacements).
    pub commits: u64,
    /// Commits that wrote a full snapshot.
    pub snapshots: u64,
    /// Changelog bytes appended.
    pub delta_bytes: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
}

/// What one commit wrote (for trace events).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommitInfo {
    /// Last batch sequence number the commit covers (the new watermark).
    pub seq: u64,
    /// Whether this commit wrote a full snapshot (vs changelog deltas).
    pub snapshot: bool,
    /// Bytes written, manifest included.
    pub bytes: u64,
    /// Wall-clock time of the commit in microseconds.
    pub wall_us: u64,
}

/// A restored store plus the recovery bookkeeping around it.
#[derive(Debug)]
pub struct RestoredState {
    /// The store, advanced to `watermark + 1` batches.
    pub store: KeyedStateStore,
    /// Last batch sequence number the checkpoint covers.
    pub watermark: u64,
    /// Bytes read and validated during restore.
    pub bytes_read: u64,
}

const MANIFEST_NAME: &str = "MANIFEST";
const CHANGELOG_NAME: &str = "changelog.ckpt";

/// The incremental checkpoint writer: buffers per-batch deltas, commits them
/// every `interval` batches, and rolls the changelog into a full snapshot
/// every `snapshot_every` commits.
#[derive(Debug)]
pub struct Checkpointer {
    dir: PathBuf,
    interval: usize,
    snapshot_every: usize,
    /// Encoded delta frames awaiting the next commit.
    pending: Vec<u8>,
    pending_frames: u32,
    since_commit: usize,
    commits: u64,
    watermark: Option<u64>,
    snapshot_file: String,
    changelog_len: u64,
    changelog_frames: u32,
    stats: CheckpointStats,
}

impl Checkpointer {
    /// Open (and create) the checkpoint directory for writing.
    pub fn create(cfg: &CheckpointConfig) -> Result<Checkpointer, CheckpointError> {
        fs::create_dir_all(&cfg.dir)?;
        Ok(Checkpointer {
            dir: cfg.dir.clone(),
            interval: cfg.interval,
            snapshot_every: cfg.snapshot_every,
            pending: Vec::new(),
            pending_frames: 0,
            since_commit: 0,
            commits: 0,
            watermark: None,
            snapshot_file: String::new(),
            changelog_len: 0,
            changelog_frames: 0,
            stats: CheckpointStats::default(),
        })
    }

    /// Last durable batch sequence number, if any commit has happened.
    pub fn watermark(&self) -> Option<u64> {
        self.watermark
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> CheckpointStats {
        self.stats
    }

    /// Record one batch's delta; commits (and possibly snapshots) when the
    /// interval is reached. `store` is the live store *after* the push.
    pub fn record(
        &mut self,
        delta: &StateDelta,
        store: &KeyedStateStore,
    ) -> Result<Option<CommitInfo>, CheckpointError> {
        let mut w = ByteWriter::new();
        put_delta(&mut w, delta);
        self.pending
            .extend_from_slice(&encode_frame(frame_kind::DELTA, w.as_bytes()));
        self.pending_frames += 1;
        self.since_commit += 1;
        if self.since_commit < self.interval {
            return Ok(None);
        }
        let started = std::time::Instant::now();
        let snapshot = self.commits.is_multiple_of(self.snapshot_every as u64);
        let mut bytes = 0u64;
        let mut old_snapshot = String::new();
        if snapshot {
            // A snapshot subsumes the buffered deltas: write the live store,
            // start a fresh (empty) changelog.
            let mut w = ByteWriter::with_capacity(store.encoded_len() + 64);
            put_store(&mut w, store);
            let frame = encode_frame(frame_kind::SNAPSHOT, w.as_bytes());
            let name = format!("snapshot-{}.ckpt", delta.seq);
            write_durable(&self.dir.join(&name), &frame)?;
            write_durable(&self.dir.join(CHANGELOG_NAME), &[])?;
            bytes += frame.len() as u64;
            self.stats.snapshots += 1;
            self.stats.snapshot_bytes += frame.len() as u64;
            old_snapshot = std::mem::replace(&mut self.snapshot_file, name);
            self.changelog_len = 0;
            self.changelog_frames = 0;
        } else {
            let mut f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(CHANGELOG_NAME))?;
            f.write_all(&self.pending)?;
            f.sync_all()?;
            bytes += self.pending.len() as u64;
            self.stats.delta_bytes += self.pending.len() as u64;
            self.changelog_len += self.pending.len() as u64;
            self.changelog_frames += self.pending_frames;
        }
        self.pending.clear();
        self.pending_frames = 0;
        self.since_commit = 0;
        self.commits += 1;
        self.watermark = Some(delta.seq);
        bytes += self.write_manifest()? as u64;
        if !old_snapshot.is_empty() {
            // Only after the new manifest is durable does the previous
            // snapshot become unreferenced; cleanup is best-effort.
            let _ = fs::remove_file(self.dir.join(old_snapshot));
        }
        self.stats.commits += 1;
        Ok(Some(CommitInfo {
            seq: delta.seq,
            snapshot,
            bytes,
            wall_us: started.elapsed().as_micros() as u64,
        }))
    }

    /// Force a full snapshot commit of the live store immediately, outside
    /// the interval cadence. Used after a shard migration: deltas are keyed
    /// by shard bucket, so the changelog must never mix shard counts — a
    /// snapshot at the new count is the commit point. The buffered deltas
    /// are subsumed by the snapshot and dropped.
    pub fn snapshot_now(&mut self, store: &KeyedStateStore) -> Result<CommitInfo, CheckpointError> {
        assert!(
            store.seq() > 0,
            "cannot snapshot before any batch is pushed"
        );
        let started = std::time::Instant::now();
        let watermark = store.seq() - 1;
        let mut w = ByteWriter::with_capacity(store.encoded_len() + 64);
        put_store(&mut w, store);
        let frame = encode_frame(frame_kind::SNAPSHOT, w.as_bytes());
        let name = format!("snapshot-{watermark}.ckpt");
        write_durable(&self.dir.join(&name), &frame)?;
        write_durable(&self.dir.join(CHANGELOG_NAME), &[])?;
        let mut bytes = frame.len() as u64;
        self.stats.snapshots += 1;
        self.stats.snapshot_bytes += frame.len() as u64;
        let old_snapshot = std::mem::replace(&mut self.snapshot_file, name);
        self.changelog_len = 0;
        self.changelog_frames = 0;
        self.pending.clear();
        self.pending_frames = 0;
        self.since_commit = 0;
        self.commits += 1;
        self.watermark = Some(watermark);
        bytes += self.write_manifest()? as u64;
        if !old_snapshot.is_empty() && old_snapshot != self.snapshot_file {
            let _ = fs::remove_file(self.dir.join(old_snapshot));
        }
        self.stats.commits += 1;
        Ok(CommitInfo {
            seq: watermark,
            snapshot: true,
            bytes,
            wall_us: started.elapsed().as_micros() as u64,
        })
    }

    /// Replace the manifest atomically (write temp + rename). Returns the
    /// bytes written.
    fn write_manifest(&self) -> Result<usize, CheckpointError> {
        let mut w = ByteWriter::new();
        w.put_u64(self.watermark.expect("manifest written after first commit"));
        w.put_str(&self.snapshot_file);
        w.put_u64(self.changelog_len);
        w.put_u32(self.changelog_frames);
        let frame = encode_frame(frame_kind::MANIFEST, w.as_bytes());
        let tmp = self.dir.join("MANIFEST.tmp");
        write_durable(&tmp, &frame)?;
        fs::rename(&tmp, self.dir.join(MANIFEST_NAME))?;
        Ok(frame.len())
    }
}

fn write_durable(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut f = File::create(path)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(())
}

fn read_file(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let mut buf = Vec::new();
    File::open(path)?.read_to_end(&mut buf)?;
    Ok(buf)
}

/// Restore the latest durable state from a checkpoint directory. `Ok(None)`
/// when no checkpoint has been committed there; any torn, truncated or
/// corrupt file is an error, never silently trusted.
pub fn restore(dir: &Path) -> Result<Option<RestoredState>, CheckpointError> {
    let manifest_bytes = match read_file(&dir.join(MANIFEST_NAME)) {
        Ok(b) => b,
        Err(CheckpointError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(None);
        }
        Err(e) => return Err(e),
    };
    let (kind, payload, consumed) = decode_frame(&manifest_bytes)?;
    if kind != frame_kind::MANIFEST {
        return Err(CheckpointError::BadRecord(kind));
    }
    if consumed != manifest_bytes.len() {
        return Err(CheckpointError::Corrupt("trailing bytes after manifest"));
    }
    let mut r = ByteReader::new(payload);
    let watermark = r.get_u64()?;
    let snapshot_file = r.get_str()?;
    let changelog_len = r.get_u64()? as usize;
    let changelog_frames = r.get_u32()?;
    r.expect_empty()?;
    if snapshot_file.contains(['/', '\\']) {
        return Err(CheckpointError::Corrupt("snapshot name escapes directory"));
    }
    let mut bytes_read = manifest_bytes.len() as u64;

    let snapshot_bytes = read_file(&dir.join(&snapshot_file))?;
    let (kind, payload, consumed) = decode_frame(&snapshot_bytes)?;
    if kind != frame_kind::SNAPSHOT {
        return Err(CheckpointError::BadRecord(kind));
    }
    if consumed != snapshot_bytes.len() {
        return Err(CheckpointError::Corrupt("trailing bytes after snapshot"));
    }
    let mut r = ByteReader::new(payload);
    let mut store = get_store(&mut r)?;
    r.expect_empty()?;
    bytes_read += snapshot_bytes.len() as u64;

    if changelog_len > 0 {
        let changelog = read_file(&dir.join(CHANGELOG_NAME))?;
        if changelog.len() < changelog_len {
            return Err(CheckpointError::Corrupt("changelog shorter than manifest"));
        }
        // Bytes past the committed length are an aborted commit: ignore.
        let mut rest = &changelog[..changelog_len];
        let mut frames = 0u32;
        while !rest.is_empty() {
            let (kind, payload, consumed) = decode_frame(rest)?;
            if kind != frame_kind::DELTA {
                return Err(CheckpointError::BadRecord(kind));
            }
            let mut r = ByteReader::new(payload);
            let delta = get_delta(&mut r)?;
            r.expect_empty()?;
            if delta.seq != store.seq() {
                return Err(CheckpointError::Corrupt("changelog delta out of order"));
            }
            store.apply_delta(&delta);
            rest = &rest[consumed..];
            frames += 1;
        }
        if frames != changelog_frames {
            return Err(CheckpointError::Corrupt("changelog frame count mismatch"));
        }
        bytes_read += changelog_len as u64;
    } else if changelog_frames != 0 {
        return Err(CheckpointError::Corrupt("changelog frame count mismatch"));
    }

    if store.seq() != watermark + 1 {
        return Err(CheckpointError::Corrupt(
            "store seq does not match watermark",
        ));
    }
    Ok(Some(RestoredState {
        store,
        watermark,
        bytes_read,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ReduceOp;
    use crate::stage::BatchOutput;
    use crate::window::WindowSpec;
    use prompt_core::hash::KeyMap;
    use prompt_core::types::{Duration, Key};

    fn temp_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos();
        let dir =
            std::env::temp_dir().join(format!("prompt-ckpt-{tag}-{}-{nanos}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn out(entries: &[(u64, f64)]) -> BatchOutput {
        let mut aggregates = KeyMap::default();
        for &(k, v) in entries {
            aggregates.insert(Key(k), v);
        }
        BatchOutput { aggregates }
    }

    fn fresh_store(r: usize) -> KeyedStateStore {
        KeyedStateStore::new(
            WindowSpec::sliding(Duration::from_secs(4), Duration::from_secs(1)),
            Duration::from_secs(1),
            ReduceOp::Sum,
            r,
        )
    }

    fn feed(store: &mut KeyedStateStore, ckpt: &mut Checkpointer, n: usize) {
        for i in 0..n {
            let b = out(&[(i as u64 % 5, 1.0 + i as f64 * 0.125), (7, -0.5 * i as f64)]);
            let (_, delta) = store.push_with_delta(&b);
            ckpt.record(&delta, store).unwrap();
        }
    }

    fn assert_same_state(a: &KeyedStateStore, b: &KeyedStateStore) {
        assert_eq!(a.seq(), b.seq());
        let ca = a.current();
        let cb = b.current();
        assert_eq!(ca.len(), cb.len());
        for (k, v) in &ca {
            assert_eq!(v.to_bits(), cb[k].to_bits(), "key {k:?}");
        }
    }

    #[test]
    fn frame_round_trips_and_rejects_corruption() {
        let frame = encode_frame(frame_kind::DELTA, b"hello frame");
        let (kind, payload, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(kind, frame_kind::DELTA);
        assert_eq!(payload, b"hello frame");
        assert_eq!(consumed, frame.len());

        // Truncation at every cut.
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).is_err(), "cut {cut}");
        }
        // Any single bit flip breaks magic, version, kind, length or CRC.
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x01;
            assert!(decode_frame(&bad).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn restore_round_trips_snapshot_plus_changelog() {
        let dir = temp_dir("roundtrip");
        let cfg = CheckpointConfig::new(&dir).interval(1).snapshot_every(4);
        let mut store = fresh_store(3);
        let mut ckpt = Checkpointer::create(&cfg).unwrap();
        // 6 commits: snapshot at 0 and 4, deltas elsewhere.
        feed(&mut store, &mut ckpt, 6);
        assert_eq!(ckpt.watermark(), Some(5));
        assert_eq!(ckpt.stats().snapshots, 2);
        let restored = restore(&dir).unwrap().expect("checkpoint exists");
        assert_eq!(restored.watermark, 5);
        assert!(restored.bytes_read > 0);
        assert_same_state(&store, &restored.store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_restores_to_none() {
        let dir = temp_dir("empty");
        assert!(restore(&dir).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interval_batches_deltas_between_commits() {
        let dir = temp_dir("interval");
        let cfg = CheckpointConfig::new(&dir).interval(3).snapshot_every(100);
        let mut store = fresh_store(2);
        let mut ckpt = Checkpointer::create(&cfg).unwrap();
        feed(&mut store, &mut ckpt, 7);
        // Commits at batches 2 and 5; batch 6 still pending.
        assert_eq!(ckpt.watermark(), Some(5));
        assert_eq!(ckpt.stats().commits, 2);
        let restored = restore(&dir).unwrap().unwrap();
        assert_eq!(restored.watermark, 5);
        assert_eq!(restored.store.seq(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_changelog_is_rejected() {
        let dir = temp_dir("corrupt");
        let cfg = CheckpointConfig::new(&dir).interval(1).snapshot_every(100);
        let mut store = fresh_store(2);
        let mut ckpt = Checkpointer::create(&cfg).unwrap();
        feed(&mut store, &mut ckpt, 4);
        let path = dir.join(CHANGELOG_NAME);
        let mut bytes = fs::read(&path).unwrap();
        // The committed changelog ends in a frame's CRC trailer: flipping its
        // last byte must surface as a CRC mismatch.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(restore(&dir), Err(CheckpointError::BadCrc { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let dir = temp_dir("truncated");
        let cfg = CheckpointConfig::new(&dir).interval(1).snapshot_every(1);
        let mut store = fresh_store(2);
        let mut ckpt = Checkpointer::create(&cfg).unwrap();
        feed(&mut store, &mut ckpt, 2);
        let snap = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().starts_with("snapshot-"))
            .unwrap()
            .path();
        let bytes = fs::read(&snap).unwrap();
        fs::write(&snap, &bytes[..bytes.len() - 7]).unwrap();
        assert!(matches!(
            restore(&dir),
            Err(CheckpointError::TruncatedFrame { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_changelog_tail_is_ignored() {
        let dir = temp_dir("tail");
        let cfg = CheckpointConfig::new(&dir).interval(1).snapshot_every(100);
        let mut store = fresh_store(2);
        let mut ckpt = Checkpointer::create(&cfg).unwrap();
        feed(&mut store, &mut ckpt, 3);
        let snapshot = store.clone();
        // Simulate a torn commit: bytes appended after the last manifest.
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(CHANGELOG_NAME))
            .unwrap();
        f.write_all(b"torn garbage never committed").unwrap();
        drop(f);
        let restored = restore(&dir).unwrap().unwrap();
        assert_eq!(restored.watermark, 2);
        assert_same_state(&snapshot, &restored.store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut frame = encode_frame(frame_kind::SNAPSHOT, b"x");
        frame[4] = CHECKPOINT_VERSION + 1;
        // Fix the CRC so the version check itself is what rejects.
        let body_len = frame.len() - FRAME_TRAILER_LEN;
        let crc = crc32(&frame[..body_len]).to_le_bytes();
        frame[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            decode_frame(&frame),
            Err(CheckpointError::BadVersion(_))
        ));
    }
}
