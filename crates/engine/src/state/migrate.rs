//! State migration for elasticity.
//!
//! When Algorithm 4 changes the reduce task count, the keyed state must
//! follow: every key re-hashes to its shard under the new count and the
//! shard contents move — running aggregates verbatim (bit-exact f64 moves,
//! never recomputed) and panes entry-by-entry, preserving sorted-key order
//! inside each pane. Because pane indices align across shards (every push
//! appends one pane everywhere), the re-sharded store replays eviction in
//! exactly the same order the old sharding would have, so window results
//! after a migration are bit-identical to a run that never migrated.

use prompt_core::hash::{bucket_of, KeySet};

use super::store::{put_shard, CountingSink, KeyedStateStore, Pane, StateShard, STATE_SHARD_SEED};

/// What a completed shard migration moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationReport {
    /// Shard count before.
    pub from_r: usize,
    /// Shard count after.
    pub to_r: usize,
    /// Distinct keys whose state moved to a different shard.
    pub keys_moved: usize,
    /// Encoded size of the shards that were handed off.
    pub bytes: u64,
}

impl KeyedStateStore {
    /// Re-shard the store to `new_r` shards. Returns what moved; a no-op
    /// (same count) reports zero keys and bytes.
    pub fn migrate(&mut self, new_r: usize) -> MigrationReport {
        assert!(new_r >= 1, "state store needs at least one shard");
        let from_r = self.shard_count();
        if new_r == from_r {
            return MigrationReport {
                from_r,
                to_r: new_r,
                keys_moved: 0,
                bytes: 0,
            };
        }
        let n_panes = self.shards().first().map(|s| s.panes.len()).unwrap_or(0);
        let mut new_shards: Vec<StateShard> = (0..new_r)
            .map(|b| StateShard {
                bucket: b as u32,
                running: Default::default(),
                panes: (0..n_panes).map(|_| Pane::new()).collect(),
            })
            .collect();
        let mut moved = KeySet::default();
        let mut bytes = 0u64;
        for shard in self.take_shards() {
            let old_bucket = shard.bucket as usize;
            let mut sink = CountingSink(0);
            put_shard(&mut sink, &shard);
            let mut shard_moved = false;
            for (k, e) in shard.running {
                let b = bucket_of(STATE_SHARD_SEED, k, new_r);
                if b != old_bucket {
                    moved.insert(k);
                    shard_moved = true;
                }
                new_shards[b].running.insert(k, e);
            }
            for (i, pane) in shard.panes.into_iter().enumerate() {
                for (k, v) in pane {
                    let b = bucket_of(STATE_SHARD_SEED, k, new_r);
                    if b != old_bucket {
                        moved.insert(k);
                        shard_moved = true;
                    }
                    new_shards[b].panes[i].push((k, v));
                }
            }
            if shard_moved {
                bytes += sink.0 as u64;
            }
        }
        for shard in &mut new_shards {
            for pane in &mut shard.panes {
                pane.sort_unstable_by_key(|&(k, _)| k.0);
            }
        }
        self.install_shards(new_shards);
        MigrationReport {
            from_r,
            to_r: new_r,
            keys_moved: moved.len(),
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ReduceOp;
    use crate::stage::BatchOutput;
    use crate::window::{WindowSpec, WindowState};
    use prompt_core::hash::KeyMap;
    use prompt_core::types::{Duration, Key};

    fn out(entries: &[(u64, f64)]) -> BatchOutput {
        let mut aggregates = KeyMap::default();
        for &(k, v) in entries {
            aggregates.insert(Key(k), v);
        }
        BatchOutput { aggregates }
    }

    fn feed(n: usize) -> Vec<BatchOutput> {
        (0..n)
            .map(|i| {
                let entries: Vec<(u64, f64)> = (0..20u64)
                    .filter(|k| !(i as u64 + k).is_multiple_of(4))
                    .map(|k| (k, 1.0 + i as f64 * 0.01 + k as f64 * 0.5))
                    .collect();
                out(&entries)
            })
            .collect()
    }

    fn spec() -> WindowSpec {
        WindowSpec::sliding(Duration::from_secs(5), Duration::from_secs(1))
    }

    #[test]
    fn migration_preserves_window_results_bit_for_bit() {
        for (from_r, to_r) in [(4usize, 8usize), (8, 3), (2, 2)] {
            let mut reference = WindowState::new(spec(), Duration::from_secs(1), ReduceOp::Sum);
            let mut store =
                KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Sum, from_r);
            let batches = feed(14);
            for (i, b) in batches.iter().enumerate() {
                if i == 7 {
                    let report = store.migrate(to_r);
                    assert_eq!(report.from_r, from_r);
                    assert_eq!(report.to_r, to_r);
                    if from_r != to_r {
                        assert!(report.keys_moved > 0, "{from_r}->{to_r} moved nothing");
                        assert!(report.bytes > 0);
                    } else {
                        assert_eq!(report.keys_moved, 0);
                        assert_eq!(report.bytes, 0);
                    }
                    assert_eq!(store.shard_count(), to_r);
                }
                let expect = reference.push(b.clone());
                let got = store.push(b);
                match (expect, got) {
                    (None, None) => {}
                    (Some(e), Some(g)) => {
                        assert_eq!(e.aggregates.len(), g.aggregates.len());
                        for (k, v) in &e.aggregates {
                            assert_eq!(v.to_bits(), g.aggregates[k].to_bits(), "key {k:?}");
                        }
                    }
                    (e, g) => panic!("emission mismatch: {e:?} vs {g:?}"),
                }
            }
        }
    }

    #[test]
    fn migrated_keys_land_on_new_shards() {
        let mut store = KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Sum, 3);
        for b in feed(6) {
            store.push(&b);
        }
        store.migrate(9);
        for shard in store.shards() {
            for &k in shard.running.keys() {
                assert_eq!(store.shard_of(k), shard.bucket as usize);
            }
        }
    }

    #[test]
    fn migration_survives_codec_round_trip() {
        let mut store = KeyedStateStore::new(spec(), Duration::from_secs(1), ReduceOp::Count, 4);
        for b in feed(8) {
            store.push(&b);
        }
        store.migrate(6);
        let mut w = prompt_core::bytes::ByteWriter::new();
        super::super::store::put_store(&mut w, &store);
        let mut r = prompt_core::bytes::ByteReader::new(w.as_bytes());
        let back = super::super::store::get_store(&mut r).unwrap();
        r.expect_empty().unwrap();
        let a = store.current();
        let b = back.current();
        assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            assert_eq!(v.to_bits(), b[k].to_bits());
        }
    }
}
