//! Durable keyed state: sharded window state, incremental checkpointing,
//! and elasticity-driven state migration.
//!
//! The engine's recovery story before this module was recompute-from-input:
//! `ReplicatedBatchStore` retains every batch's tuples and a lost batch is
//! re-executed from scratch. That bounds neither recovery time nor retained
//! bytes. This module adds the missing layer:
//!
//! * [`KeyedStateStore`] — the window state of `crate::window::WindowState`,
//!   sharded by bucket with a fixed hash seed, bit-identical to the serial
//!   path (see the store module docs for why).
//! * [`Checkpointer`] / [`restore`] — per-batch changelog deltas plus
//!   periodic full snapshots in CRC-validated binary frames, committed via
//!   an atomically replaced manifest.
//! * [`KeyedStateStore::migrate`] — deterministic re-sharding when the
//!   Algorithm 4 auto-scaler changes the reduce task count, in-process or
//!   shipped over the wire by the distributed runtime.
//!
//! With checkpointing on, the driver truncates retained inputs at the
//! checkpoint watermark and recovery recomputes only the post-checkpoint
//! suffix — both visible as trace events.

mod checkpoint;
mod migrate;
mod store;

pub use checkpoint::{
    decode_frame, encode_frame, frame_kind, restore, CheckpointConfig, CheckpointError,
    CheckpointStats, Checkpointer, CommitInfo, RestoredState, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
    FRAME_HEADER_LEN, FRAME_TRAILER_LEN, MAX_FRAME_PAYLOAD,
};
pub use migrate::MigrationReport;
pub use store::{
    get_delta, get_shard, get_store, put_delta, put_shard, put_store, KeyedStateStore, Pane,
    StateDelta, StateShard, STATE_SHARD_SEED,
};

/// A stateful per-key operator evaluated against the live state store —
/// the query-layer entry point into this subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatefulOp {
    /// Per-key count of in-window batches the key appeared in (a "session
    /// count": how many intervals of the window the key was active in).
    SessionCount,
}

impl StatefulOp {
    /// Evaluate the operator against a store.
    pub fn eval(&self, store: &KeyedStateStore) -> prompt_core::hash::KeyMap<f64> {
        match self {
            StatefulOp::SessionCount => store.session_counts(),
        }
    }
}

/// Cumulative state-layer accounting for one run, reported on
/// `crate::driver::RunResult`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateStats {
    /// Checkpoint commits.
    pub checkpoints: u64,
    /// Commits that wrote a full snapshot.
    pub snapshots: u64,
    /// Total checkpoint bytes written (deltas + snapshots + manifests).
    pub checkpoint_bytes: u64,
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
    /// Final checkpoint watermark (last durable batch), if any.
    pub watermark: Option<u64>,
    /// State restores performed (lost state or resumed run).
    pub restores: u64,
    /// Batches recomputed from retained input after restores.
    pub recomputed_batches: u64,
    /// Shard migrations triggered by scale actions.
    pub migrations: u64,
    /// Distinct keys moved across shards by migrations.
    pub migrated_keys: u64,
    /// High-water mark of tuples retained by the replicated batch store
    /// over the run (the memory bound the watermark truncation enforces).
    pub max_retained_tuples: u64,
    /// High-water mark of batches retained by the replicated batch store.
    pub max_retained_batches: u64,
}
