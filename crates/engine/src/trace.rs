//! Batch-lifecycle observability: a structured, low-overhead event sink.
//!
//! Every figure in §7 is derived from per-batch signals — partitioning
//! overhead, stage makespans, queue delay, `W` — but a flat end-of-run
//! [`BatchRecord`](crate::driver::BatchRecord) cannot answer *where inside a
//! batch* time went or *why* the controller acted. This module records the
//! full batch lifecycle as typed events:
//!
//! * **Spans** over virtual time — accumulate → queue wait → visible
//!   partitioning overhead → Map stage → Reduce stage → recovery
//!   recomputations. The spans of [`PROCESSING_KINDS`] laid end to end
//!   reconcile *exactly* with `BatchRecord::processing`; the integration
//!   tests assert that, so the trace layer carries its own differential
//!   safety net.
//! * **Phases** over wall-clock time — the batching phase's seal / symbolic
//!   assignment / materialization split, and the threaded backend's real
//!   Map / scatter / Reduce times. Informational only: wall time never feeds
//!   back into virtual time, so traced runs stay deterministic.
//! * **Decision events** — elasticity zone transitions, grace entry/exit,
//!   scale actions with their rate/key-trend evidence, straggler hits,
//!   recovery recomputations, back-pressure trips and probe outcomes.
//!
//! # Recorder concurrency
//!
//! [`TraceRecorder`] is shared by `&` reference across the threaded
//! backend's workers. Counters and per-stage histograms are plain atomics
//! (lock-free). The event log is sharded eight ways with one mutex per
//! shard and a per-thread shard assignment, so concurrent recorders almost
//! never contend; a global ordinal (an atomic counter) timestamps every
//! event so [`TraceRecorder::events`] can restore a single total order.
//!
//! # Sinks
//!
//! Three consumption paths, selected by [`TraceLevel`] in
//! [`EngineConfig`](crate::config::EngineConfig):
//!
//! * `Off` — every recording call is a cheap early return.
//! * `Summary` — counters + histograms only; [`TraceRecorder::summary`]
//!   yields per-stage counts, means and log₂-bucket percentiles.
//! * `Full` — additionally keeps the typed event log, exportable as
//!   JSON-lines ([`TraceRecorder::to_jsonl`], hand-rolled — the workspace
//!   has no serde) and re-importable with [`parse_jsonl`] (the bench
//!   harness consumes this to render per-stage breakdowns).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use prompt_core::types::{Duration, Time};

/// How much the recorder keeps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceLevel {
    /// Record nothing; every call is a cheap early return.
    #[default]
    Off,
    /// Counters and per-stage histograms only.
    Summary,
    /// Everything: counters, histograms and the typed event log.
    Full,
}

/// A stage of the batch lifecycle (the subject of spans and phases).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StageKind {
    /// The batching interval itself (virtual span = the heartbeat period).
    Accumulate,
    /// Wall-clock: the per-batch select/score work — the policy's strategy
    /// decision plus the chosen technique's per-tuple selection phase (e.g.
    /// the d-choices sketch probe), split out of the partition phases so
    /// policy overhead is visible in stage-breakdown tables.
    Select,
    /// Wall-clock: replaying the accumulator into the sealed batch.
    Seal,
    /// Wall-clock: Algorithm 2's symbolic piece assignment.
    PartitionSymbolic,
    /// Wall-clock: materializing blocks from the symbolic assignment.
    PartitionMaterialize,
    /// Virtual: partitioning overhead that spilled past early release.
    PartitionVisible,
    /// Virtual: time queued behind earlier batches in the pipeline.
    QueueWait,
    /// Wall-clock (threaded backend): the shuffle scatter.
    Scatter,
    /// The Map stage makespan.
    MapStage,
    /// The Reduce stage makespan.
    ReduceStage,
    /// Virtual: one recovery recomputation after injected state loss.
    Recovery,
}

impl StageKind {
    /// All kinds, in lifecycle order.
    pub const ALL: [StageKind; 11] = [
        StageKind::Accumulate,
        StageKind::Select,
        StageKind::Seal,
        StageKind::PartitionSymbolic,
        StageKind::PartitionMaterialize,
        StageKind::PartitionVisible,
        StageKind::QueueWait,
        StageKind::Scatter,
        StageKind::MapStage,
        StageKind::ReduceStage,
        StageKind::Recovery,
    ];

    /// Stable wire name (JSON-lines `kind` field).
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Accumulate => "accumulate",
            StageKind::Select => "select",
            StageKind::Seal => "seal",
            StageKind::PartitionSymbolic => "partition_symbolic",
            StageKind::PartitionMaterialize => "partition_materialize",
            StageKind::PartitionVisible => "partition_visible",
            StageKind::QueueWait => "queue_wait",
            StageKind::Scatter => "scatter",
            StageKind::MapStage => "map_stage",
            StageKind::ReduceStage => "reduce_stage",
            StageKind::Recovery => "recovery",
        }
    }

    /// Inverse of [`StageKind::name`].
    pub fn from_name(s: &str) -> Option<StageKind> {
        StageKind::ALL.into_iter().find(|k| k.name() == s)
    }

    fn index(self) -> usize {
        StageKind::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// The virtual-time span kinds that make up `BatchRecord::processing`: for
/// every batch, the durations of these spans sum to exactly the batch's
/// processing time (the trace layer's reconciliation invariant).
pub const PROCESSING_KINDS: [StageKind; 4] = [
    StageKind::PartitionVisible,
    StageKind::MapStage,
    StageKind::ReduceStage,
    StageKind::Recovery,
];

/// A monotonically increasing count the recorder maintains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Batches executed.
    Batches,
    /// Tuples ingested.
    Tuples,
    /// (key cluster → bucket) routings performed by the shuffle.
    ScatterFragments,
    /// Scatter routings whose key was a split key.
    SplitKeyFragments,
    /// Elasticity zone changes between consecutive batches.
    ZoneTransitions,
    /// Applied scale-out actions.
    ScaleOut,
    /// Applied scale-in actions.
    ScaleIn,
    /// Fired decisions that were saturated no-ops.
    NoopDecisions,
    /// Grace periods entered (= applied actions).
    GraceEntries,
    /// Straggler events applied.
    Stragglers,
    /// Recovery recomputations performed.
    Recoveries,
    /// Distributed workers declared lost (heartbeat timeout, socket failure
    /// or injected kill).
    WorkersLost,
    /// Batches whose queue delay exceeded the back-pressure threshold.
    BackpressureBatches,
    /// Sustainable-rate probes that came back sustainable.
    ProbesSustainable,
    /// Sustainable-rate probes that came back unsustainable.
    ProbesUnsustainable,
    /// Checkpoint commits (delta or snapshot) written by the state layer.
    Checkpoints,
    /// Total checkpoint bytes written (deltas + snapshots + manifests).
    CheckpointBytes,
    /// Checkpoint commits that wrote a full snapshot.
    Snapshots,
    /// Snapshot bytes written.
    SnapshotBytes,
    /// Keyed-state restores (lost store or resumed run).
    StateRestores,
    /// Batches recomputed from retained input after state restores.
    RecomputedBatches,
    /// Shard migrations triggered by scale actions.
    StateMigrations,
    /// Distinct keys moved across shards by migrations.
    MigratedKeys,
    /// Shuffle connections dialed by reducing workers (pool misses).
    ShuffleConnsDialed,
    /// Pooled shuffle connections reused by reducing workers (pool hits).
    ShuffleConnsReused,
    /// Wall-clock µs workers spent waiting on shuffle fetches.
    ShuffleWaitUs,
    /// Fetch-reply bytes received by workers (v2 varint encoding).
    ShuffleBytesWire,
    /// v1 fixed-width equivalent of the same fetch replies.
    ShuffleBytesRaw,
    /// Partitioner-policy decisions evaluated at batch boundaries.
    PolicyDecisions,
    /// Policy decisions that switched the partitioning technique.
    PolicySwitches,
    /// Applied key-group migration plans (routing-table version bumps).
    Rebalances,
    /// Key-groups moved between workers across all applied plans.
    GroupsMoved,
}

impl Counter {
    /// All counters, in declaration order.
    pub const ALL: [Counter; 32] = [
        Counter::Batches,
        Counter::Tuples,
        Counter::ScatterFragments,
        Counter::SplitKeyFragments,
        Counter::ZoneTransitions,
        Counter::ScaleOut,
        Counter::ScaleIn,
        Counter::NoopDecisions,
        Counter::GraceEntries,
        Counter::Stragglers,
        Counter::Recoveries,
        Counter::WorkersLost,
        Counter::BackpressureBatches,
        Counter::ProbesSustainable,
        Counter::ProbesUnsustainable,
        Counter::Checkpoints,
        Counter::CheckpointBytes,
        Counter::Snapshots,
        Counter::SnapshotBytes,
        Counter::StateRestores,
        Counter::RecomputedBatches,
        Counter::StateMigrations,
        Counter::MigratedKeys,
        Counter::ShuffleConnsDialed,
        Counter::ShuffleConnsReused,
        Counter::ShuffleWaitUs,
        Counter::ShuffleBytesWire,
        Counter::ShuffleBytesRaw,
        Counter::PolicyDecisions,
        Counter::PolicySwitches,
        Counter::Rebalances,
        Counter::GroupsMoved,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Batches => "batches",
            Counter::Tuples => "tuples",
            Counter::ScatterFragments => "scatter_fragments",
            Counter::SplitKeyFragments => "split_key_fragments",
            Counter::ZoneTransitions => "zone_transitions",
            Counter::ScaleOut => "scale_out",
            Counter::ScaleIn => "scale_in",
            Counter::NoopDecisions => "noop_decisions",
            Counter::GraceEntries => "grace_entries",
            Counter::Stragglers => "stragglers",
            Counter::Recoveries => "recoveries",
            Counter::WorkersLost => "workers_lost",
            Counter::BackpressureBatches => "backpressure_batches",
            Counter::ProbesSustainable => "probes_sustainable",
            Counter::ProbesUnsustainable => "probes_unsustainable",
            Counter::Checkpoints => "checkpoints",
            Counter::CheckpointBytes => "checkpoint_bytes",
            Counter::Snapshots => "snapshots",
            Counter::SnapshotBytes => "snapshot_bytes",
            Counter::StateRestores => "state_restores",
            Counter::RecomputedBatches => "recomputed_batches",
            Counter::StateMigrations => "state_migrations",
            Counter::MigratedKeys => "migrated_keys",
            Counter::ShuffleConnsDialed => "shuffle_conns_dialed",
            Counter::ShuffleConnsReused => "shuffle_conns_reused",
            Counter::ShuffleWaitUs => "shuffle_wait_us",
            Counter::ShuffleBytesWire => "shuffle_bytes_wire",
            Counter::ShuffleBytesRaw => "shuffle_bytes_raw",
            Counter::PolicyDecisions => "policy_decisions",
            Counter::PolicySwitches => "policy_switches",
            Counter::Rebalances => "rebalances",
            Counter::GroupsMoved => "groups_moved",
        }
    }

    fn index(self) -> usize {
        Counter::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// One recorded observation.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A virtual-time interval of batch `seq` spent in `kind`.
    Span {
        /// Batch sequence number.
        seq: u64,
        /// Lifecycle stage.
        kind: StageKind,
        /// Span start (virtual µs).
        start_us: u64,
        /// Span end (virtual µs).
        end_us: u64,
    },
    /// A wall-clock measurement of batch `seq` in `kind` (informational;
    /// never fed back into virtual time).
    Phase {
        /// Batch sequence number.
        seq: u64,
        /// Lifecycle stage.
        kind: StageKind,
        /// Measured wall time in µs.
        wall_us: u64,
    },
    /// The elasticity controller saw batch `seq` land in a new zone.
    Zone {
        /// Batch sequence number.
        seq: u64,
        /// Fig. 9b zone (1 / 2 / 3).
        zone: u8,
        /// The load value that placed it there.
        w: f64,
    },
    /// An applied scale action, with the trend evidence behind it.
    Scale {
        /// Batch sequence number.
        seq: u64,
        /// New Map task count.
        map_tasks: usize,
        /// New Reduce task count.
        reduce_tasks: usize,
        /// True for scale-out.
        out: bool,
        /// Data-rate trend at the decision.
        rate_trend: f64,
        /// Key-cardinality trend at the decision.
        key_trend: f64,
    },
    /// Grace-period entry (after an applied action) or exit.
    Grace {
        /// Batch sequence number.
        seq: u64,
        /// True on entry, false on exit.
        entered: bool,
    },
    /// An injected straggler inflated a task.
    Straggler {
        /// Batch sequence number.
        seq: u64,
        /// [`StageKind::MapStage`] or [`StageKind::ReduceStage`].
        stage: StageKind,
        /// Task index within the stage.
        task: usize,
        /// Multiplicative slowdown applied.
        slowdown: f64,
    },
    /// One recovery recomputation after injected state loss.
    Recovery {
        /// Batch sequence number.
        seq: u64,
        /// Replicas remaining after this recovery consumed one.
        replicas_left: usize,
    },
    /// The driver declared a distributed worker lost while batch `seq` was
    /// in flight (the decision that triggers recomputation).
    WorkerLost {
        /// Batch sequence number in flight at the loss.
        seq: u64,
        /// The lost worker's id.
        worker: u32,
    },
    /// Batch `seq` queued past the back-pressure threshold.
    Backpressure {
        /// Batch sequence number.
        seq: u64,
        /// The batch's queue delay in µs.
        queue_us: u64,
        /// The configured threshold in µs.
        limit_us: u64,
    },
    /// One sustainable-rate probe outcome.
    Probe {
        /// Probed ingestion rate (tuples/s).
        rate: f64,
        /// Whether the run at this rate stayed stable.
        sustainable: bool,
    },
    /// One checkpoint commit of the keyed state store.
    Checkpoint {
        /// Last batch covered by the commit (the new watermark).
        seq: u64,
        /// Whether this commit wrote a full snapshot (else delta-only).
        snapshot: bool,
        /// Bytes written by the commit (frames + manifest).
        bytes: u64,
        /// Wall-clock time of the commit in µs.
        wall_us: u64,
    },
    /// The keyed state store was rebuilt (lost store or resumed run).
    StateRestore {
        /// Batch sequence number at which the restore happened.
        seq: u64,
        /// First batch *not* covered by the restored checkpoint: the
        /// watermark + 1, or `0` when no checkpoint existed.
        covered: u64,
        /// Checkpoint bytes read during the restore.
        bytes: u64,
        /// Batches recomputed from retained input to catch up.
        recomputed: u64,
    },
    /// The partitioner policy hot-swapped the technique at a batch
    /// boundary: batch `seq` runs `to` where its predecessor ran `from`.
    PolicySwitch {
        /// First batch partitioned by the new technique.
        seq: u64,
        /// Label of the previous technique (`Technique::label`).
        from: String,
        /// Label of the newly selected technique.
        to: String,
    },
    /// The rebalance policy applied a migration plan: the routing table
    /// advanced to `version` before batch `seq` was assigned.
    Rebalance {
        /// First batch routed by the new table version.
        seq: u64,
        /// The routing-table version after the plan applied.
        version: u64,
        /// Key-groups moved by the plan.
        moves: u64,
        /// The worker busy-time max/mean ratio that triggered the plan.
        imbalance: f64,
    },
    /// One key-group changed owner as part of an applied migration plan.
    GroupMigrate {
        /// First batch routed by the new table version.
        seq: u64,
        /// The migrated key-group.
        group: u32,
        /// Previous owner (reduce bucket).
        from: u32,
        /// New owner (reduce bucket).
        to: u32,
        /// Encoded bytes of the group-scoped state payload shipped with
        /// the move (0 when the run keeps no keyed state).
        bytes: u64,
    },
    /// A scale action changed the reduce count and state shards migrated.
    StateMigrate {
        /// Batch sequence number of the scale action.
        seq: u64,
        /// Shard count before.
        from_r: usize,
        /// Shard count after.
        to_r: usize,
        /// Distinct keys that changed shard.
        keys: u64,
        /// Encoded bytes of the shards that handed keys off.
        bytes: u64,
    },
}

impl TraceEvent {
    /// Span length in µs (0 for non-span events).
    pub fn span_us(&self) -> u64 {
        match *self {
            TraceEvent::Span {
                start_us, end_us, ..
            } => end_us - start_us,
            _ => 0,
        }
    }

    /// The batch the event belongs to, when it has one.
    pub fn seq(&self) -> Option<u64> {
        match *self {
            TraceEvent::Span { seq, .. }
            | TraceEvent::Phase { seq, .. }
            | TraceEvent::Zone { seq, .. }
            | TraceEvent::Scale { seq, .. }
            | TraceEvent::Grace { seq, .. }
            | TraceEvent::Straggler { seq, .. }
            | TraceEvent::Recovery { seq, .. }
            | TraceEvent::WorkerLost { seq, .. }
            | TraceEvent::Backpressure { seq, .. }
            | TraceEvent::Checkpoint { seq, .. }
            | TraceEvent::StateRestore { seq, .. }
            | TraceEvent::Rebalance { seq, .. }
            | TraceEvent::GroupMigrate { seq, .. }
            | TraceEvent::StateMigrate { seq, .. } => Some(seq),
            TraceEvent::PolicySwitch { seq, .. } => Some(seq),
            TraceEvent::Probe { .. } => None,
        }
    }

    /// Serialise as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::Span {
                seq,
                kind,
                start_us,
                end_us,
            } => format!(
                "{{\"type\":\"span\",\"seq\":{seq},\"kind\":\"{}\",\"start_us\":{start_us},\"end_us\":{end_us}}}",
                kind.name()
            ),
            TraceEvent::Phase { seq, kind, wall_us } => format!(
                "{{\"type\":\"phase\",\"seq\":{seq},\"kind\":\"{}\",\"wall_us\":{wall_us}}}",
                kind.name()
            ),
            TraceEvent::Zone { seq, zone, w } => {
                format!("{{\"type\":\"zone\",\"seq\":{seq},\"zone\":{zone},\"w\":{w}}}")
            }
            TraceEvent::Scale {
                seq,
                map_tasks,
                reduce_tasks,
                out,
                rate_trend,
                key_trend,
            } => format!(
                "{{\"type\":\"scale\",\"seq\":{seq},\"map_tasks\":{map_tasks},\"reduce_tasks\":{reduce_tasks},\"out\":{out},\"rate_trend\":{rate_trend},\"key_trend\":{key_trend}}}"
            ),
            TraceEvent::Grace { seq, entered } => {
                format!("{{\"type\":\"grace\",\"seq\":{seq},\"entered\":{entered}}}")
            }
            TraceEvent::Straggler {
                seq,
                stage,
                task,
                slowdown,
            } => format!(
                "{{\"type\":\"straggler\",\"seq\":{seq},\"stage\":\"{}\",\"task\":{task},\"slowdown\":{slowdown}}}",
                stage.name()
            ),
            TraceEvent::Recovery { seq, replicas_left } => format!(
                "{{\"type\":\"recovery\",\"seq\":{seq},\"replicas_left\":{replicas_left}}}"
            ),
            TraceEvent::WorkerLost { seq, worker } => {
                format!("{{\"type\":\"worker_lost\",\"seq\":{seq},\"worker\":{worker}}}")
            }
            TraceEvent::Backpressure {
                seq,
                queue_us,
                limit_us,
            } => format!(
                "{{\"type\":\"backpressure\",\"seq\":{seq},\"queue_us\":{queue_us},\"limit_us\":{limit_us}}}"
            ),
            TraceEvent::Probe { rate, sustainable } => {
                format!("{{\"type\":\"probe\",\"rate\":{rate},\"sustainable\":{sustainable}}}")
            }
            TraceEvent::Checkpoint {
                seq,
                snapshot,
                bytes,
                wall_us,
            } => format!(
                "{{\"type\":\"checkpoint\",\"seq\":{seq},\"snapshot\":{snapshot},\"bytes\":{bytes},\"wall_us\":{wall_us}}}"
            ),
            TraceEvent::StateRestore {
                seq,
                covered,
                bytes,
                recomputed,
            } => format!(
                "{{\"type\":\"state_restore\",\"seq\":{seq},\"covered\":{covered},\"bytes\":{bytes},\"recomputed\":{recomputed}}}"
            ),
            TraceEvent::Rebalance {
                seq,
                version,
                moves,
                imbalance,
            } => format!(
                "{{\"type\":\"rebalance\",\"seq\":{seq},\"version\":{version},\"moves\":{moves},\"imbalance\":{imbalance}}}"
            ),
            TraceEvent::GroupMigrate {
                seq,
                group,
                from,
                to,
                bytes,
            } => format!(
                "{{\"type\":\"group_migrate\",\"seq\":{seq},\"group\":{group},\"from\":{from},\"to\":{to},\"bytes\":{bytes}}}"
            ),
            TraceEvent::StateMigrate {
                seq,
                from_r,
                to_r,
                keys,
                bytes,
            } => format!(
                "{{\"type\":\"state_migrate\",\"seq\":{seq},\"from_r\":{from_r},\"to_r\":{to_r},\"keys\":{keys},\"bytes\":{bytes}}}"
            ),
            TraceEvent::PolicySwitch { seq, from, to } => format!(
                "{{\"type\":\"policy_switch\",\"seq\":{seq},\"from\":\"{from}\",\"to\":\"{to}\"}}"
            ),
        }
    }
}

/// Serialise events as JSON-lines (one object per line).
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// Parse JSON-lines produced by [`to_jsonl`] / [`TraceRecorder::to_jsonl`]
/// back into events. Blank lines are skipped; anything else malformed is an
/// error naming the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(parse_event(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// Parse one flat JSON object into field pairs. Only the subset the trace
/// format emits is supported: string, number and boolean values, no nesting,
/// no escapes inside strings.
fn parse_fields(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("not a JSON object")?;
    let mut fields = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let after_quote = rest.strip_prefix('"').ok_or("expected quoted key")?;
        let key_end = after_quote.find('"').ok_or("unterminated key")?;
        let key = &after_quote[..key_end];
        let after_key = after_quote[key_end + 1..].trim_start();
        let mut val_text = after_key
            .strip_prefix(':')
            .ok_or("expected ':'")?
            .trim_start();
        let value = if let Some(s) = val_text.strip_prefix('"') {
            let end = s.find('"').ok_or("unterminated string value")?;
            val_text = &s[end + 1..];
            s[..end].to_string()
        } else {
            let end = val_text.find(',').unwrap_or(val_text.len());
            let v = val_text[..end].trim().to_string();
            val_text = &val_text[end..];
            if v.is_empty() {
                return Err("empty value".into());
            }
            v
        };
        fields.push((key.to_string(), value));
        rest = val_text.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err("expected ',' between fields".into());
        }
    }
    Ok(fields)
}

fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let fields = parse_fields(line)?;
    let get = |name: &str| -> Result<&str, String> {
        fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
            .ok_or_else(|| format!("missing field '{name}'"))
    };
    let num = |name: &str| -> Result<u64, String> {
        get(name)?
            .parse()
            .map_err(|_| format!("field '{name}' is not an integer"))
    };
    let float = |name: &str| -> Result<f64, String> {
        get(name)?
            .parse()
            .map_err(|_| format!("field '{name}' is not a number"))
    };
    let boolean = |name: &str| -> Result<bool, String> {
        match get(name)? {
            "true" => Ok(true),
            "false" => Ok(false),
            _ => Err(format!("field '{name}' is not a boolean")),
        }
    };
    let kind = |name: &str| -> Result<StageKind, String> {
        let v = get(name)?;
        StageKind::from_name(v).ok_or_else(|| format!("unknown stage kind '{v}'"))
    };
    match get("type")? {
        "span" => Ok(TraceEvent::Span {
            seq: num("seq")?,
            kind: kind("kind")?,
            start_us: num("start_us")?,
            end_us: num("end_us")?,
        }),
        "phase" => Ok(TraceEvent::Phase {
            seq: num("seq")?,
            kind: kind("kind")?,
            wall_us: num("wall_us")?,
        }),
        "zone" => Ok(TraceEvent::Zone {
            seq: num("seq")?,
            zone: num("zone")? as u8,
            w: float("w")?,
        }),
        "scale" => Ok(TraceEvent::Scale {
            seq: num("seq")?,
            map_tasks: num("map_tasks")? as usize,
            reduce_tasks: num("reduce_tasks")? as usize,
            out: boolean("out")?,
            rate_trend: float("rate_trend")?,
            key_trend: float("key_trend")?,
        }),
        "grace" => Ok(TraceEvent::Grace {
            seq: num("seq")?,
            entered: boolean("entered")?,
        }),
        "straggler" => Ok(TraceEvent::Straggler {
            seq: num("seq")?,
            stage: kind("stage")?,
            task: num("task")? as usize,
            slowdown: float("slowdown")?,
        }),
        "recovery" => Ok(TraceEvent::Recovery {
            seq: num("seq")?,
            replicas_left: num("replicas_left")? as usize,
        }),
        "worker_lost" => Ok(TraceEvent::WorkerLost {
            seq: num("seq")?,
            worker: num("worker")? as u32,
        }),
        "backpressure" => Ok(TraceEvent::Backpressure {
            seq: num("seq")?,
            queue_us: num("queue_us")?,
            limit_us: num("limit_us")?,
        }),
        "probe" => Ok(TraceEvent::Probe {
            rate: float("rate")?,
            sustainable: boolean("sustainable")?,
        }),
        "checkpoint" => Ok(TraceEvent::Checkpoint {
            seq: num("seq")?,
            snapshot: boolean("snapshot")?,
            bytes: num("bytes")?,
            wall_us: num("wall_us")?,
        }),
        "state_restore" => Ok(TraceEvent::StateRestore {
            seq: num("seq")?,
            covered: num("covered")?,
            bytes: num("bytes")?,
            recomputed: num("recomputed")?,
        }),
        "rebalance" => Ok(TraceEvent::Rebalance {
            seq: num("seq")?,
            version: num("version")?,
            moves: num("moves")?,
            imbalance: float("imbalance")?,
        }),
        "group_migrate" => Ok(TraceEvent::GroupMigrate {
            seq: num("seq")?,
            group: num("group")? as u32,
            from: num("from")? as u32,
            to: num("to")? as u32,
            bytes: num("bytes")?,
        }),
        "state_migrate" => Ok(TraceEvent::StateMigrate {
            seq: num("seq")?,
            from_r: num("from_r")? as usize,
            to_r: num("to_r")? as usize,
            keys: num("keys")?,
            bytes: num("bytes")?,
        }),
        "policy_switch" => Ok(TraceEvent::PolicySwitch {
            seq: num("seq")?,
            from: get("from")?.to_string(),
            to: get("to")?.to_string(),
        }),
        other => Err(format!("unknown event type '{other}'")),
    }
}

/// Number of log₂ duration buckets (covers up to 2³⁹ µs ≈ 6 days).
const HIST_BUCKETS: usize = 40;

/// A lock-free log₂-bucket histogram of µs durations.
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((us.ilog2() + 1) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket's value range.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Nearest-rank percentile, reported as the containing bucket's upper
    /// bound (clamped by the observed maximum) — a ≤ 2× overestimate by
    /// construction of the log₂ buckets.
    fn percentile(&self, p: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }
}

/// Per-stage aggregate in a [`TraceSummary`].
#[derive(Clone, Copy, Debug)]
pub struct StageSummary {
    /// The stage.
    pub kind: StageKind,
    /// Observations recorded.
    pub count: u64,
    /// Total µs across observations.
    pub total_us: u64,
    /// Mean µs (exact: total / count).
    pub mean_us: f64,
    /// Median, from the log₂ histogram (bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile, from the log₂ histogram (bucket upper bound).
    pub p95_us: u64,
    /// Largest single observation (exact).
    pub max_us: u64,
}

/// End-of-run digest: per-stage duration summaries plus all counters.
/// Available at [`TraceLevel::Summary`] and above.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// One entry per stage that recorded at least one observation, in
    /// lifecycle order.
    pub stages: Vec<StageSummary>,
    /// Non-zero counters, in declaration order.
    pub counters: Vec<(Counter, u64)>,
    /// Per-reduce-worker busy time accumulated over the run (µs), indexed
    /// by bucket. Empty when the driver recorded no per-worker times.
    pub worker_busy_us: Vec<u64>,
    /// Max/mean ratio of [`TraceSummary::worker_busy_us`] — the hot-worker
    /// signal the rebalancer acts on (1.0 = perfectly balanced). `None`
    /// when no per-worker times were recorded.
    pub load_imbalance: Option<f64>,
}

impl TraceSummary {
    /// Look up a stage's summary.
    pub fn stage(&self, kind: StageKind) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.kind == kind)
    }

    /// Look up a counter (0 when it never fired).
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| *k == c)
            .map_or(0, |&(_, v)| v)
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<22} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "stage", "count", "mean ms", "p50 ms", "p95 ms", "max ms"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<22} {:>8} {:>12.3} {:>10.3} {:>10.3} {:>10.3}",
                s.kind.name(),
                s.count,
                s.mean_us / 1e3,
                s.p50_us as f64 / 1e3,
                s.p95_us as f64 / 1e3,
                s.max_us as f64 / 1e3,
            )?;
        }
        for (c, v) in &self.counters {
            writeln!(f, "{:<22} {v}", c.name())?;
        }
        if let Some(ratio) = self.load_imbalance {
            writeln!(
                f,
                "{:<22} {ratio:.3} (max/mean over {} workers)",
                "load_imbalance",
                self.worker_busy_us.len()
            )?;
        }
        Ok(())
    }
}

/// Number of event-log shards (kept small; contention is per-thread).
const SHARDS: usize = 8;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    static MY_SHARD: std::cell::OnceCell<usize> = const { std::cell::OnceCell::new() };
}

fn my_shard() -> usize {
    MY_SHARD.with(|c| *c.get_or_init(|| NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS))
}

/// The thread-safe event sink (see the module docs for the concurrency
/// story). Recording methods take `&self`, so one recorder can be shared by
/// every worker of the threaded backend.
#[derive(Debug)]
pub struct TraceRecorder {
    level: TraceLevel,
    ordinal: AtomicU64,
    counters: [AtomicU64; Counter::ALL.len()],
    hists: [Histogram; StageKind::ALL.len()],
    shards: [Mutex<Vec<(u64, TraceEvent)>>; SHARDS],
    /// Per-reduce-worker busy-time totals (µs), fed by the driver at each
    /// commit; the summary derives the load-imbalance ratio from them.
    worker_busy: Mutex<Vec<u64>>,
}

impl TraceRecorder {
    /// Create a recorder at the given level.
    pub fn new(level: TraceLevel) -> TraceRecorder {
        TraceRecorder {
            level,
            ordinal: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| Histogram::default()),
            shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
            worker_busy: Mutex::new(Vec::new()),
        }
    }

    /// The configured level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Whether anything is recorded at all.
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// Bump a counter.
    pub fn incr(&self, c: Counter, by: u64) {
        if self.enabled() {
            self.counters[c.index()].fetch_add(by, Ordering::Relaxed);
        }
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Record a virtual-time span of batch `seq` in `kind`. Zero-length
    /// spans are dropped (reconciliation sums are unaffected).
    pub fn span(&self, seq: u64, kind: StageKind, start: Time, end: Time) {
        if !self.enabled() || end <= start {
            return;
        }
        let (start_us, end_us) = (start.0, end.0);
        self.hists[kind.index()].record(end_us - start_us);
        self.push(TraceEvent::Span {
            seq,
            kind,
            start_us,
            end_us,
        });
    }

    /// Record a wall-clock phase measurement of batch `seq` in `kind`.
    pub fn phase(&self, seq: u64, kind: StageKind, wall: Duration) {
        if !self.enabled() {
            return;
        }
        self.hists[kind.index()].record(wall.0);
        self.push(TraceEvent::Phase {
            seq,
            kind,
            wall_us: wall.0,
        });
    }

    /// Accumulate one committed batch's per-reduce-worker busy times into
    /// the run totals (indexed by bucket; the vector grows to the largest
    /// reduce count seen). Recorded at [`TraceLevel::Summary`] and above.
    pub fn worker_busy(&self, times: &[Duration]) {
        if !self.enabled() || times.is_empty() {
            return;
        }
        let mut busy = self.worker_busy.lock().expect("worker-busy poisoned");
        if busy.len() < times.len() {
            busy.resize(times.len(), 0);
        }
        for (b, t) in times.iter().enumerate() {
            busy[b] += t.0;
        }
    }

    /// Record a decision event (kept only at [`TraceLevel::Full`]).
    pub fn event(&self, e: TraceEvent) {
        if self.enabled() {
            self.push(e);
        }
    }

    fn push(&self, e: TraceEvent) {
        if self.level != TraceLevel::Full {
            return;
        }
        let ord = self.ordinal.fetch_add(1, Ordering::Relaxed);
        self.shards[my_shard()]
            .lock()
            .expect("trace shard poisoned")
            .push((ord, e));
    }

    /// Snapshot of the event log in recording order (empty below
    /// [`TraceLevel::Full`]).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<(u64, TraceEvent)> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().expect("trace shard poisoned").iter().cloned());
        }
        all.sort_by_key(|&(ord, _)| ord);
        all.into_iter().map(|(_, e)| e).collect()
    }

    /// The event log as JSON-lines (see [`to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        to_jsonl(&self.events())
    }

    /// Build the end-of-run digest from the histograms and counters.
    pub fn summary(&self) -> TraceSummary {
        let mut stages = Vec::new();
        for kind in StageKind::ALL {
            let h = &self.hists[kind.index()];
            let count = h.count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let total_us = h.sum.load(Ordering::Relaxed);
            stages.push(StageSummary {
                kind,
                count,
                total_us,
                mean_us: total_us as f64 / count as f64,
                p50_us: h.percentile(0.50),
                p95_us: h.percentile(0.95),
                max_us: h.max.load(Ordering::Relaxed),
            });
        }
        let counters = Counter::ALL
            .into_iter()
            .filter_map(|c| {
                let v = self.counter(c);
                (v > 0).then_some((c, v))
            })
            .collect();
        let worker_busy_us = self
            .worker_busy
            .lock()
            .expect("worker-busy poisoned")
            .clone();
        let load_imbalance = (!worker_busy_us.is_empty())
            .then(|| crate::rebalance::imbalance_ratio(&worker_busy_us));
        TraceSummary {
            stages,
            counters,
            worker_busy_us,
            load_imbalance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_level_records_nothing() {
        let rec = TraceRecorder::new(TraceLevel::Off);
        rec.incr(Counter::Batches, 5);
        rec.span(0, StageKind::MapStage, Time(0), Time(100));
        rec.phase(0, StageKind::Seal, Duration::from_micros(10));
        rec.event(TraceEvent::Grace {
            seq: 0,
            entered: true,
        });
        assert_eq!(rec.counter(Counter::Batches), 0);
        assert!(rec.events().is_empty());
        assert!(rec.summary().stages.is_empty());
    }

    #[test]
    fn summary_level_keeps_histograms_but_not_events() {
        let rec = TraceRecorder::new(TraceLevel::Summary);
        rec.span(0, StageKind::MapStage, Time(0), Time(1000));
        rec.span(1, StageKind::MapStage, Time(0), Time(3000));
        rec.incr(Counter::Batches, 2);
        assert!(rec.events().is_empty(), "event log only at Full");
        let s = rec.summary();
        let map = s.stage(StageKind::MapStage).expect("map recorded");
        assert_eq!(map.count, 2);
        assert_eq!(map.total_us, 4000);
        assert_eq!(map.mean_us, 2000.0);
        assert_eq!(map.max_us, 3000);
        assert_eq!(s.counter(Counter::Batches), 2);
        assert_eq!(s.counter(Counter::Recoveries), 0);
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let rec = TraceRecorder::new(TraceLevel::Full);
        rec.span(0, StageKind::QueueWait, Time(50), Time(50));
        assert!(rec.events().is_empty());
        assert!(rec.summary().stage(StageKind::QueueWait).is_none());
    }

    #[test]
    fn events_preserve_recording_order() {
        let rec = TraceRecorder::new(TraceLevel::Full);
        for seq in 0..20 {
            rec.span(seq, StageKind::MapStage, Time(0), Time(seq + 1));
        }
        let seqs: Vec<u64> = rec.events().iter().filter_map(|e| e.seq()).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = TraceRecorder::new(TraceLevel::Full);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..100 {
                        rec.incr(Counter::Tuples, 1);
                        rec.span(t, StageKind::ReduceStage, Time(0), Time(i + 1));
                    }
                });
            }
        });
        assert_eq!(rec.counter(Counter::Tuples), 400);
        assert_eq!(rec.events().len(), 400);
        assert_eq!(
            rec.summary().stage(StageKind::ReduceStage).unwrap().count,
            400
        );
    }

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let h = Histogram::default();
        for us in 1..=1000u64 {
            h.record(us);
        }
        let p50 = h.percentile(0.50);
        let p95 = h.percentile(0.95);
        // Log2 buckets overestimate by at most 2x and never exceed the max.
        assert!((500..=1000).contains(&p50), "p50 = {p50}");
        assert!((950..=1000).contains(&p95), "p95 = {p95}");
        assert!(p50 <= p95);
        assert_eq!(h.percentile(1.0), 1000.min(bucket_upper(bucket_of(1000))));
    }

    #[test]
    fn bucket_layout_is_monotonic() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for us in 0..10_000u64 {
            let b = bucket_of(us);
            assert!(us <= bucket_upper(b), "{us} above its bucket bound");
            assert!(b == 0 || us > bucket_upper(b - 1));
        }
        // Durations beyond the last bucket saturate instead of panicking.
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let events = vec![
            TraceEvent::Span {
                seq: 3,
                kind: StageKind::PartitionVisible,
                start_us: 1_000_000,
                end_us: 1_030_000,
            },
            TraceEvent::Phase {
                seq: 3,
                kind: StageKind::PartitionSymbolic,
                wall_us: 42,
            },
            TraceEvent::Zone {
                seq: 4,
                zone: 3,
                w: 1.25,
            },
            TraceEvent::Scale {
                seq: 5,
                map_tasks: 6,
                reduce_tasks: 4,
                out: true,
                rate_trend: 812.5,
                key_trend: -3.0,
            },
            TraceEvent::Grace {
                seq: 5,
                entered: true,
            },
            TraceEvent::Grace {
                seq: 7,
                entered: false,
            },
            TraceEvent::Straggler {
                seq: 8,
                stage: StageKind::ReduceStage,
                task: 2,
                slowdown: 10.0,
            },
            TraceEvent::Recovery {
                seq: 9,
                replicas_left: 1,
            },
            TraceEvent::WorkerLost { seq: 9, worker: 2 },
            TraceEvent::Backpressure {
                seq: 10,
                queue_us: 2_500_000,
                limit_us: 2_000_000,
            },
            TraceEvent::Probe {
                rate: 123456.789,
                sustainable: false,
            },
            TraceEvent::Checkpoint {
                seq: 11,
                snapshot: true,
                bytes: 4096,
                wall_us: 250,
            },
            TraceEvent::StateRestore {
                seq: 12,
                covered: 9,
                bytes: 4096,
                recomputed: 3,
            },
            TraceEvent::Rebalance {
                seq: 15,
                version: 2,
                moves: 3,
                imbalance: 1.75,
            },
            TraceEvent::GroupMigrate {
                seq: 15,
                group: 7,
                from: 0,
                to: 2,
                bytes: 512,
            },
            TraceEvent::StateMigrate {
                seq: 13,
                from_r: 4,
                to_r: 8,
                keys: 17,
                bytes: 1024,
            },
            TraceEvent::PolicySwitch {
                seq: 14,
                from: "Hash".to_string(),
                to: "Prompt".to_string(),
            },
        ];
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let parsed = parse_jsonl(&text).expect("round trip");
        assert_eq!(parsed, events);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(
            parse_jsonl("{\"type\":\"span\",\"seq\":1}").is_err(),
            "missing fields"
        );
        assert!(parse_jsonl("{\"type\":\"warp\"}").is_err(), "unknown type");
        assert!(
            parse_jsonl("{\"type\":\"phase\",\"seq\":0,\"kind\":\"nope\",\"wall_us\":1}").is_err(),
            "unknown stage kind"
        );
        // Blank lines are fine.
        assert_eq!(parse_jsonl("\n\n").unwrap(), vec![]);
    }

    #[test]
    fn summary_display_lists_stages_and_counters() {
        let rec = TraceRecorder::new(TraceLevel::Summary);
        rec.span(0, StageKind::MapStage, Time(0), Time(500));
        rec.incr(Counter::ScaleOut, 2);
        let text = rec.summary().to_string();
        assert!(text.contains("map_stage"));
        assert!(text.contains("scale_out"));
        assert!(!text.contains("recovery"), "silent stages omitted");
    }

    #[test]
    fn worker_busy_accumulates_into_load_imbalance() {
        let rec = TraceRecorder::new(TraceLevel::Summary);
        // Two batches: bucket 0 ends at 300 µs, buckets 1..3 at 100 µs each.
        rec.worker_busy(&[Duration(200), Duration(50), Duration(50), Duration(50)]);
        rec.worker_busy(&[Duration(100), Duration(50), Duration(50), Duration(50)]);
        let s = rec.summary();
        assert_eq!(s.worker_busy_us, vec![300, 100, 100, 100]);
        // max = 300, mean = 150 → ratio 2.0.
        assert_eq!(s.load_imbalance, Some(2.0));
        assert!(s.to_string().contains("load_imbalance"));

        let off = TraceRecorder::new(TraceLevel::Off);
        off.worker_busy(&[Duration(200)]);
        assert_eq!(off.summary().load_imbalance, None);
    }

    #[test]
    fn stage_kind_names_round_trip() {
        for k in StageKind::ALL {
            assert_eq!(StageKind::from_name(k.name()), Some(k));
        }
        assert_eq!(StageKind::from_name("bogus"), None);
    }
}
