//! Adaptive partitioner selection: a per-batch policy engine that hot-swaps
//! partitioning strategies at batch boundaries.
//!
//! The paper's Prompt partitioner wins under skew but pays sketch/assignment
//! overhead that plain hashing avoids under uniform load, and no single
//! strategy dominates a stream whose skew, rate and cardinality drift
//! mid-run. Micro-batch boundaries are a natural consistency point — every
//! batch is partitioned from scratch — so a policy layer can swap the
//! partitioner between batches with zero correctness risk.
//!
//! # Protocol
//!
//! The driver calls [`PartitionerPolicy::decide`] once per batch, in strict
//! sequence order, *before* the batch is partitioned; the returned
//! [`PolicyDecision`] names the technique for that batch. After partitioning
//! it feeds the plan's statistics back via [`PartitionerPolicy::observe`].
//! Decisions are therefore a pure function of prior-batch statistics: they
//! cannot depend on the current batch's content, on wall-clock timing, on
//! the trace level, or on pipeline depth. That purity is the determinism
//! contract — an adaptive run is bit-identical to a run forced through the
//! same per-batch technique sequence ([`PolicySpec::Forced`] is exactly
//! that replay mechanism, and `tests/policy_differential.rs` gates it on
//! all three backends).
//!
//! # Scoring
//!
//! [`AdaptivePolicy`] keeps a live [`SpaceSaving`] frequency sketch, re-fed
//! each batch from the plan's key fragments (exact per-batch counts, folded
//! in O(fragments) with weighted updates). At each decision it predicts,
//! for every candidate technique, the normalised MPI the *next* batch would
//! score — hash imbalance is simulated by routing the sketch's tracked keys
//! through the engine's real hash function — plus a fixed modelled
//! per-batch selection overhead (Fig. 14's ordering: Prompt's accumulator
//! costs more than a sketch probe, which costs more than a bare hash).
//! Hash wins under near-uniform key mass, Prompt under skew, and Shuffle
//! when key locality carries no weight (`p3 = 0`, the map-only setting).
//!
//! Hysteresis keeps the policy from flapping: a switch needs the best
//! candidate to beat the incumbent by a relative [`AdaptiveConfig::margin`],
//! and once switched the choice dwells for at least
//! [`AdaptiveConfig::min_dwell`] batches.

use std::collections::VecDeque;

use prompt_core::batch::PartitionPlan;
use prompt_core::hash::bucket_of;
use prompt_core::metrics::{MpiWeights, PlanMetrics};
use prompt_core::partitioner::Technique;
use prompt_core::sketch::SpaceSaving;

/// Which partitioner runs each batch: the policy knob on
/// [`EngineConfig`](crate::config::EngineConfig).
#[derive(Clone, Debug, PartialEq)]
pub enum PolicySpec {
    /// One technique for the whole run (the classic behaviour and the
    /// default). [`StreamingEngine::new`](crate::driver::StreamingEngine::new)
    /// normalises this variant to its constructor technique, so existing
    /// call sites keep their meaning.
    Fixed(Technique),
    /// Replay an explicit per-batch technique sequence: batch `seq` uses
    /// `forced[min(seq, len - 1)]`. This is the differential-test oracle —
    /// force the sequence an adaptive run recorded and the outputs must be
    /// bit-identical — and doubles as a scripting hook.
    Forced(Vec<Technique>),
    /// Score candidates each batch and switch at batch boundaries.
    Adaptive(AdaptiveConfig),
}

impl Default for PolicySpec {
    fn default() -> PolicySpec {
        PolicySpec::Fixed(Technique::Prompt)
    }
}

impl PolicySpec {
    /// Whether this is the run-constant (classic) policy.
    pub fn is_fixed(&self) -> bool {
        matches!(self, PolicySpec::Fixed(_))
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PolicySpec::Fixed(_) => Ok(()),
            PolicySpec::Forced(seq) => {
                if seq.is_empty() {
                    return Err("forced policy needs at least one technique".into());
                }
                Ok(())
            }
            PolicySpec::Adaptive(cfg) => cfg.validate(),
        }
    }
}

/// Tuning of [`AdaptivePolicy`].
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptiveConfig {
    /// Candidate techniques the policy may select between. The first
    /// candidate breaks score ties, so order is part of determinism.
    pub candidates: Vec<Technique>,
    /// Minimum batches between switches (hysteresis dwell). A switch at
    /// batch `s` blocks further switches until batch `s + min_dwell`.
    pub min_dwell: u64,
    /// Relative score margin a challenger must clear: switch only when
    /// `best < incumbent * (1 - margin)`. In `[0, 1)`.
    pub margin: f64,
    /// MPI weights the predicted scores are built from. `p3 = 0` models a
    /// map-only stage (key locality worthless), which is where Shuffle
    /// wins.
    pub weights: MpiWeights,
    /// Heavy-hitter threshold (fraction of batch mass) for the live sketch.
    pub phi: f64,
    /// Counters in the live sketch.
    pub sketch_counters: usize,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            candidates: vec![Technique::Hash, Technique::Prompt, Technique::Shuffle],
            min_dwell: 2,
            margin: 0.05,
            weights: MpiWeights::default(),
            phi: 0.01,
            sketch_counters: 256,
        }
    }
}

impl AdaptiveConfig {
    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.candidates.is_empty() {
            return Err("adaptive policy needs at least one candidate technique".into());
        }
        if self.min_dwell == 0 {
            return Err("adaptive min_dwell must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.margin) {
            return Err(format!(
                "adaptive margin must be in [0, 1), got {}",
                self.margin
            ));
        }
        if !(self.phi > 0.0 && self.phi < 1.0) {
            return Err(format!("adaptive phi must be in (0, 1), got {}", self.phi));
        }
        if self.sketch_counters == 0 {
            return Err("adaptive sketch needs at least one counter".into());
        }
        self.weights.validate()
    }
}

/// What one batch looked like after partitioning — the policy's only input.
///
/// Everything here is available at *prepare* time on every backend and at
/// every trace level, which is what keeps decisions depth- and
/// trace-invariant.
pub struct BatchObservation<'a> {
    /// Batch sequence number.
    pub seq: u64,
    /// The technique that produced the plan.
    pub technique: Technique,
    /// Tuples in the batch.
    pub n_tuples: usize,
    /// Distinct keys in the batch.
    pub n_keys: usize,
    /// Map tasks (blocks) the batch was cut into.
    pub map_tasks: usize,
    /// Partition-quality metrics of the plan.
    pub metrics: PlanMetrics,
    /// The plan itself (its key fragments carry exact per-key counts).
    pub plan: &'a PartitionPlan,
}

/// One per-batch policy decision — the explicit decision log entry.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicyDecision {
    /// The batch this decision applies to.
    pub seq: u64,
    /// Technique selected for this batch.
    pub technique: Technique,
    /// The technique of the previous batch (equals `technique` unless
    /// `switched`).
    pub prev: Technique,
    /// Whether this decision changed the technique.
    pub switched: bool,
    /// Predicted per-candidate scores (lower is better). Empty while the
    /// policy has no statistics yet, and for policies that don't score.
    pub scores: Vec<(Technique, f64)>,
}

/// A per-batch partitioner-selection policy.
///
/// Implementations must keep [`decide`](PartitionerPolicy::decide) a pure
/// function of construction parameters and prior
/// [`observe`](PartitionerPolicy::observe) calls — never of wall-clock
/// time, trace level, or anything outside the observation protocol.
pub trait PartitionerPolicy: Send {
    /// Policy name for logs and summaries.
    fn name(&self) -> &'static str;

    /// Choose the technique for batch `seq`. Called once per batch, in
    /// strictly increasing `seq` order, before the batch is partitioned.
    fn decide(&mut self, seq: u64) -> PolicyDecision;

    /// Feed back the statistics of the batch just partitioned.
    fn observe(&mut self, obs: &BatchObservation<'_>);
}

/// Build the policy an engine run drives, seeded with the technique of
/// batch 0.
pub fn build_policy(
    spec: &PolicySpec,
    initial: Technique,
    seed: u64,
) -> Box<dyn PartitionerPolicy> {
    match spec {
        PolicySpec::Fixed(t) => Box::new(FixedPolicy::new(*t)),
        PolicySpec::Forced(seq) => Box::new(ForcedSequencePolicy::new(seq.clone())),
        PolicySpec::Adaptive(cfg) => Box::new(AdaptivePolicy::new(cfg.clone(), initial, seed)),
    }
}

/// The modelled per-batch selection overhead of each technique, in
/// normalised-MPI units (the same scale as the predicted scores). The
/// ordering follows the paper's Fig. 14 overhead story: Prompt's
/// accumulator costs more than a heavy-hitter sketch probe, which costs
/// more than candidate hashing, which costs more than a bare hash or
/// round-robin.
pub fn technique_overhead(t: Technique) -> f64 {
    match t {
        Technique::TimeBased => 0.0,
        Technique::Shuffle => 0.005,
        Technique::Hash => 0.01,
        Technique::Pkg(_) => 0.02,
        Technique::Cam(_) => 0.03,
        Technique::DChoices(_) => 0.04,
        Technique::Prompt => 0.06,
        Technique::PromptPostSort => 0.09,
    }
}

/// The classic run-constant policy: always the same technique, no state.
#[derive(Clone, Debug)]
pub struct FixedPolicy {
    technique: Technique,
}

impl FixedPolicy {
    /// A policy pinned to `technique`.
    pub fn new(technique: Technique) -> FixedPolicy {
        FixedPolicy { technique }
    }
}

impl PartitionerPolicy for FixedPolicy {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn decide(&mut self, seq: u64) -> PolicyDecision {
        PolicyDecision {
            seq,
            technique: self.technique,
            prev: self.technique,
            switched: false,
            scores: Vec::new(),
        }
    }

    fn observe(&mut self, _obs: &BatchObservation<'_>) {}
}

/// Replay an explicit per-batch technique sequence: batch `seq` uses
/// `forced[min(seq, len - 1)]`. The differential oracle for adaptive runs.
#[derive(Clone, Debug)]
pub struct ForcedSequencePolicy {
    forced: Vec<Technique>,
}

impl ForcedSequencePolicy {
    /// A policy replaying `forced` (non-empty; the last entry repeats).
    pub fn new(forced: Vec<Technique>) -> ForcedSequencePolicy {
        assert!(!forced.is_empty(), "forced sequence must be non-empty");
        ForcedSequencePolicy { forced }
    }

    fn at(&self, seq: u64) -> Technique {
        let idx = (seq as usize).min(self.forced.len() - 1);
        self.forced[idx]
    }
}

impl PartitionerPolicy for ForcedSequencePolicy {
    fn name(&self) -> &'static str {
        "forced"
    }

    fn decide(&mut self, seq: u64) -> PolicyDecision {
        let technique = self.at(seq);
        let prev = if seq == 0 {
            technique
        } else {
            self.at(seq - 1)
        };
        PolicyDecision {
            seq,
            technique,
            prev,
            switched: technique != prev,
            scores: Vec::new(),
        }
    }

    fn observe(&mut self, _obs: &BatchObservation<'_>) {}
}

/// The statistics snapshot [`AdaptivePolicy`] scores from — everything is
/// reduced to plain numbers at observe time so decisions are cheap and the
/// provenance is explicit.
#[derive(Clone, Copy, Debug, Default)]
struct SkewSnapshot {
    n_tuples: f64,
    n_keys: f64,
    map_tasks: f64,
    /// Estimated mass held by keys above `phi`, floored at the heaviest
    /// single key's share (`0..=1`).
    heavy_mass: f64,
    /// Simulated normalised BSI of hashing this key distribution:
    /// `max_load / avg_load - 1` with tracked keys routed through the
    /// engine's real hash and the untracked tail spread uniformly.
    hash_imbalance: f64,
}

/// The default adaptive policy: score the live frequency sketch and the
/// BSI/BCI/KSR/MPI trail each batch, switch with hysteresis.
pub struct AdaptivePolicy {
    cfg: AdaptiveConfig,
    seed: u64,
    current: Technique,
    last_switch: Option<u64>,
    sketch: SpaceSaving,
    snapshot: Option<SkewSnapshot>,
    /// Recent batch sizes, newest last — the arrival-rate trend input.
    rates: VecDeque<f64>,
}

impl AdaptivePolicy {
    /// A policy starting on `initial` (batch 0's technique — there are no
    /// statistics to score yet). `seed` must be the engine's partitioner
    /// seed so the hash-imbalance simulation routes keys exactly like the
    /// real [`HashPartitioner`](prompt_core::partitioner::HashPartitioner).
    pub fn new(cfg: AdaptiveConfig, initial: Technique, seed: u64) -> AdaptivePolicy {
        cfg.validate().expect("invalid adaptive policy config");
        let sketch = SpaceSaving::new(cfg.sketch_counters);
        AdaptivePolicy {
            cfg,
            seed,
            current: initial,
            last_switch: None,
            sketch,
            snapshot: None,
            rates: VecDeque::new(),
        }
    }

    /// The currently selected technique.
    pub fn current(&self) -> Technique {
        self.current
    }

    /// Multiplicative arrival-rate trend over the recent batches, clamped
    /// to `[0.25, 4]` so one outlier batch cannot swing the predictions.
    fn rate_trend(&self) -> f64 {
        if self.rates.len() < 2 {
            return 1.0;
        }
        let prev = self.rates[self.rates.len() - 2];
        let last = self.rates[self.rates.len() - 1];
        if prev <= 0.0 {
            return 1.0;
        }
        (last / prev).clamp(0.25, 4.0)
    }

    /// Predicted score (lower is better) of running `t` on the next batch.
    fn predicted_score(&self, t: Technique, s: &SkewSnapshot) -> f64 {
        let w = self.cfg.weights;
        let p = s.map_tasks.max(1.0);
        // The trend scales the predicted batch size; imbalance and KSR
        // predictions are share-based, so only the tuples-per-key ratio
        // moves with it.
        let n = (s.n_tuples * self.rate_trend()).max(1.0);
        let k = s.n_keys.max(1.0);
        // Average tuples per key caps how far round-robin can split one.
        let per_key = (n / k).max(1.0);
        let imb = s.hash_imbalance;
        let overhead = technique_overhead(t);
        match t {
            // Block = arrival slot: balanced only if arrivals are; keys
            // spread like shuffle. Model as shuffle with a mild size skew.
            Technique::TimeBased => {
                w.p1 * (imb * 0.5) + w.p2 * (imb * 0.5) + w.p3 * per_key.min(p) + overhead
            }
            // Round-robin: perfect size balance, worst-case key splitting.
            Technique::Shuffle => w.p3 * per_key.min(p) + overhead,
            // Pure key grouping: no splits (KSR = 1), full skew exposure.
            Technique::Hash => w.p1 * imb + w.p2 * imb + w.p3 * 1.0 + overhead,
            // d-way splitting of every key: imbalance shrinks ~d-fold, KSR
            // grows toward d (capped by key multiplicity).
            Technique::Pkg(d) | Technique::Cam(d) => {
                let d = d as f64;
                let ksr = per_key.min(d);
                w.p1 * (imb / d) + w.p2 * (imb / d) + w.p3 * ksr + overhead
            }
            // Only detected heavy hitters split d ways; the tail keeps
            // locality.
            Technique::DChoices(d) => {
                let d = d as f64;
                let ksr = 1.0 + s.heavy_mass * (d - 1.0).min(per_key - 1.0).max(0.0);
                w.p1 * (imb / d) + w.p2 * (imb / d) + w.p3 * ksr + overhead
            }
            // Exact statistics split exactly the keys balance requires:
            // near-zero imbalance, KSR grows only with the heavy mass.
            Technique::Prompt | Technique::PromptPostSort => w.p3 * (1.0 + s.heavy_mass) + overhead,
        }
    }
}

impl PartitionerPolicy for AdaptivePolicy {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn decide(&mut self, seq: u64) -> PolicyDecision {
        let prev = self.current;
        let mut scores: Vec<(Technique, f64)> = Vec::new();
        let mut switched = false;
        if let Some(s) = self.snapshot {
            for &t in &self.cfg.candidates {
                scores.push((t, self.predicted_score(t, &s)));
            }
            let incumbent = scores
                .iter()
                .find(|(t, _)| *t == prev)
                .map(|&(_, sc)| sc)
                .unwrap_or_else(|| self.predicted_score(prev, &s));
            // First candidate wins ties: strictly-less comparison over the
            // configured order is deterministic under f64 equality.
            let best = scores
                .iter()
                .copied()
                .reduce(|acc, c| if c.1 < acc.1 { c } else { acc });
            let dwell_ok = self
                .last_switch
                .is_none_or(|s0| seq.saturating_sub(s0) >= self.cfg.min_dwell);
            if let Some((best_t, best_score)) = best {
                if dwell_ok && best_t != prev && best_score < incumbent * (1.0 - self.cfg.margin) {
                    self.current = best_t;
                    self.last_switch = Some(seq);
                    switched = true;
                }
            }
        }
        PolicyDecision {
            seq,
            technique: self.current,
            prev,
            switched,
            scores,
        }
    }

    fn observe(&mut self, obs: &BatchObservation<'_>) {
        self.rates.push_back(obs.n_tuples as f64);
        while self.rates.len() > 8 {
            self.rates.pop_front();
        }
        // Re-feed the sketch from this batch's plan fragments: exact
        // per-key counts, folded with weighted updates. Clearing first
        // keeps the statistics fresh under drift; dwell hysteresis supplies
        // the stability.
        self.sketch.clear();
        for block in &obs.plan.blocks {
            for f in &block.fragments {
                self.sketch.observe_n(f.key, f.count as u64);
            }
        }
        let total = self.sketch.total().max(1) as f64;
        let tracked = self.sketch.heavy_hitters(0.0);
        let top_share = tracked.first().map_or(0.0, |&(_, c)| c as f64 / total);
        // Floor at the top key's share: a key dominating the batch is heavy
        // mass even when it sits below `phi`.
        let heavy_mass = (self
            .sketch
            .heavy_hitters(self.cfg.phi)
            .iter()
            .map(|&(_, c)| c as f64)
            .sum::<f64>()
            / total)
            .max(top_share);
        // Simulate hashing the sketched distribution into p bins with the
        // engine's real hash; the untracked tail spreads uniformly.
        let p = obs.map_tasks.max(1);
        let mut loads = vec![0.0f64; p];
        let mut tracked_mass = 0.0;
        for &(key, c) in &tracked {
            let share = c as f64 / total;
            loads[bucket_of(self.seed, key, p)] += share;
            tracked_mass += share;
        }
        let tail_each = (1.0 - tracked_mass).max(0.0) / p as f64;
        let max_load = loads.iter().map(|l| l + tail_each).fold(0.0f64, f64::max);
        let raw_imbalance = (max_load * p as f64 - 1.0).max(0.0);
        // Deadband: any stateless assignment of k near-equal keys into p
        // bins shows ~√(2·ln p)·√(p/k) relative imbalance from sampling
        // noise alone (expected max of p near-Gaussian bin loads). Only the
        // excess above that floor is *systematic* skew a smarter partitioner
        // could remove, so only the excess is charged against Hash.
        let k = (obs.n_keys.max(1)) as f64;
        let noise = (p as f64 / k).sqrt() * (2.0 * (p as f64).ln()).sqrt().max(1.0);
        let hash_imbalance = (raw_imbalance - noise).max(0.0);
        self.snapshot = Some(SkewSnapshot {
            n_tuples: obs.n_tuples as f64,
            n_keys: obs.n_keys as f64,
            map_tasks: obs.map_tasks as f64,
            heavy_mass,
            hash_imbalance,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prompt_core::batch::MicroBatch;
    use prompt_core::types::{Interval, Key, Time, Tuple};

    /// A batch with the given per-key counts.
    fn batch(spec: &[(u64, usize)]) -> MicroBatch {
        let total: usize = spec.iter().map(|&(_, c)| c).sum();
        let iv = Interval::new(Time::ZERO, Time::from_secs(1));
        let step = iv.len().0 / (total.max(1) as u64 + 1);
        let mut tuples = Vec::new();
        let mut ts = 0;
        let mut remaining: Vec<(u64, usize)> = spec.to_vec();
        while tuples.len() < total {
            for r in remaining.iter_mut() {
                if r.1 > 0 {
                    r.1 -= 1;
                    ts += step;
                    tuples.push(Tuple::keyed(Time::from_micros(ts), Key(r.0)));
                }
            }
        }
        MicroBatch::new(tuples, iv)
    }

    fn observe_batch(policy: &mut AdaptivePolicy, seq: u64, spec: &[(u64, usize)], p: usize) {
        let b = batch(spec);
        let plan = Technique::Hash.build(7).partition(&b, p);
        policy.observe(&BatchObservation {
            seq,
            technique: policy.current(),
            n_tuples: b.len(),
            n_keys: b.distinct_keys(),
            map_tasks: p,
            metrics: PlanMetrics::of(&plan),
            plan: &plan,
        });
    }

    fn uniform_spec(keys: u64, each: usize) -> Vec<(u64, usize)> {
        (0..keys).map(|k| (k, each)).collect()
    }

    fn skewed_spec(keys: u64, hot: usize, tail: usize) -> Vec<(u64, usize)> {
        let mut s = vec![(0u64, hot)];
        s.extend((1..keys).map(|k| (k, tail)));
        s
    }

    #[test]
    fn spec_validation() {
        assert!(PolicySpec::default().validate().is_ok());
        assert!(PolicySpec::Forced(vec![]).validate().is_err());
        assert!(PolicySpec::Forced(vec![Technique::Hash]).validate().is_ok());
        let bad = [
            AdaptiveConfig {
                candidates: vec![],
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                min_dwell: 0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                margin: 1.0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                phi: 0.0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                sketch_counters: 0,
                ..AdaptiveConfig::default()
            },
            AdaptiveConfig {
                weights: MpiWeights {
                    p1: 0.9,
                    p2: 0.9,
                    p3: 0.9,
                },
                ..AdaptiveConfig::default()
            },
        ];
        for cfg in bad {
            assert!(
                PolicySpec::Adaptive(cfg.clone()).validate().is_err(),
                "{cfg:?}"
            );
        }
        assert!(PolicySpec::Adaptive(AdaptiveConfig::default())
            .validate()
            .is_ok());
    }

    #[test]
    fn forced_sequence_replays_and_repeats_last() {
        let mut p =
            ForcedSequencePolicy::new(vec![Technique::Hash, Technique::Hash, Technique::Prompt]);
        let d0 = p.decide(0);
        assert_eq!(d0.technique, Technique::Hash);
        assert!(!d0.switched);
        let d2 = p.decide(2);
        assert_eq!(d2.technique, Technique::Prompt);
        assert!(d2.switched);
        let d9 = p.decide(9);
        assert_eq!(d9.technique, Technique::Prompt);
        assert!(!d9.switched);
    }

    #[test]
    fn adaptive_picks_hash_under_uniform_load() {
        let mut policy = AdaptivePolicy::new(AdaptiveConfig::default(), Technique::Prompt, 7);
        // Batch 0 has no statistics: stays on the initial technique.
        let d0 = policy.decide(0);
        assert_eq!(d0.technique, Technique::Prompt);
        assert!(d0.scores.is_empty());
        for seq in 0..4 {
            observe_batch(&mut policy, seq, &uniform_spec(200, 20), 8);
            policy.decide(seq + 1);
        }
        assert_eq!(
            policy.current(),
            Technique::Hash,
            "near-uniform key mass must settle on Hash"
        );
    }

    #[test]
    fn adaptive_picks_prompt_under_heavy_skew() {
        let mut policy = AdaptivePolicy::new(AdaptiveConfig::default(), Technique::Hash, 7);
        for seq in 0..4 {
            observe_batch(&mut policy, seq, &skewed_spec(50, 4_000, 10), 8);
            policy.decide(seq + 1);
        }
        assert_eq!(
            policy.current(),
            Technique::Prompt,
            "a dominant hot key must drive the policy to Prompt"
        );
    }

    #[test]
    fn map_only_weights_pick_shuffle() {
        let cfg = AdaptiveConfig {
            weights: MpiWeights {
                p1: 0.5,
                p2: 0.5,
                p3: 0.0,
            },
            ..AdaptiveConfig::default()
        };
        let mut policy = AdaptivePolicy::new(cfg, Technique::Hash, 7);
        for seq in 0..4 {
            observe_batch(&mut policy, seq, &skewed_spec(50, 4_000, 10), 8);
            policy.decide(seq + 1);
        }
        assert_eq!(
            policy.current(),
            Technique::Shuffle,
            "with key locality worthless, perfect balance at minimal overhead wins"
        );
    }

    #[test]
    fn hysteresis_dwell_blocks_consecutive_switches() {
        let cfg = AdaptiveConfig {
            min_dwell: 3,
            ..AdaptiveConfig::default()
        };
        let mut policy = AdaptivePolicy::new(cfg, Technique::Hash, 7);
        // Alternate uniform and skewed batches: without dwell this would
        // flap every batch.
        let mut switches: Vec<u64> = Vec::new();
        for seq in 0..20u64 {
            let spec = if seq % 2 == 0 {
                uniform_spec(200, 20)
            } else {
                skewed_spec(50, 4_000, 10)
            };
            observe_batch(&mut policy, seq, &spec, 8);
            let d = policy.decide(seq + 1);
            if d.switched {
                switches.push(seq + 1);
            }
        }
        for w in switches.windows(2) {
            assert!(w[1] - w[0] >= 3, "switches too close: {switches:?}");
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut policy = AdaptivePolicy::new(AdaptiveConfig::default(), Technique::Prompt, 7);
            let mut log = Vec::new();
            for seq in 0..8u64 {
                let spec = if seq < 4 {
                    uniform_spec(200, 20)
                } else {
                    skewed_spec(50, 4_000, 10)
                };
                observe_batch(&mut policy, seq, &spec, 8);
                log.push(policy.decide(seq + 1));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn overhead_table_orders_prompt_above_hash() {
        assert!(technique_overhead(Technique::Prompt) > technique_overhead(Technique::Hash));
        assert!(
            technique_overhead(Technique::PromptPostSort) > technique_overhead(Technique::Prompt)
        );
        assert!(technique_overhead(Technique::Hash) > technique_overhead(Technique::Shuffle));
        assert_eq!(technique_overhead(Technique::TimeBased), 0.0);
    }

    #[test]
    fn fixed_policy_never_switches() {
        let mut p = FixedPolicy::new(Technique::Cam(4));
        for seq in 0..5 {
            let d = p.decide(seq);
            assert_eq!(d.technique, Technique::Cam(4));
            assert!(!d.switched);
            assert!(d.scores.is_empty());
        }
    }
}
