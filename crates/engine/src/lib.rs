//! # prompt-engine
//!
//! A distributed micro-batch stream processing engine substrate — the
//! Spark-Streaming stand-in the Prompt partitioning scheme (SIGMOD 2020) is
//! evaluated inside.
//!
//! The engine reproduces the computational model of §2.1: a receiver
//! accumulates tuples per heartbeat interval, a batching-phase partitioner
//! cuts each micro-batch into data blocks, Map tasks process blocks and
//! scatter key clusters into Reduce buckets, and windowed query state is
//! maintained across batch outputs with inverse-Reduce eviction. Batching
//! and processing are pipelined (Fig. 2): a batch whose processing exceeds
//! the interval delays its successors, and sustained queueing triggers
//! back-pressure.
//!
//! Three execution backends share the same semantics (selected by
//! [`config::EngineConfig::backend`]) and are **bit-identical** given the
//! same plan and assigner state:
//!
//! * [`stage::execute_batch`] — the **simulated cluster**: deterministic,
//!   virtual-time, with task times from an explicit [`cost::CostModel`] and
//!   stage times as LPT makespans (Eqn. 1 generalised to waves). All
//!   experiments run here by default.
//! * [`threaded::ThreadedExecutor`] — a real multi-threaded backend for the
//!   runnable examples.
//! * [`net::DistributedRuntime`] — a real multi-*process* backend: tasks run
//!   on spawned `prompt-worker` processes over a binary TCP protocol, with
//!   heartbeat failure detection and recompute-from-replica recovery.
//!
//! [`driver::StreamingEngine`] is the top-level entry point;
//! [`elasticity::AutoScaler`] implements the Algorithm 4 controller.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backpressure;
pub mod batch_resize;
pub mod cluster;
pub mod config;
pub mod cost;
pub mod driver;
pub mod elasticity;
pub mod job;
pub mod net;
pub mod policy;
pub mod rebalance;
pub mod recovery;
pub mod reorder;
/// Re-export of the stream-source abstraction from `prompt-core`.
pub mod source {
    pub use prompt_core::source::TupleSource;
}
pub mod stage;
pub mod state;
pub mod stats;
pub mod straggler;
pub mod tenancy;
pub mod threaded;
pub mod trace;
pub mod window;

/// Convenient import surface.
pub mod prelude {
    pub use crate::backpressure::max_sustainable_rate;
    pub use crate::batch_resize::{run_with_resizing, BatchSizeController, ResizeRunResult};
    pub use crate::cluster::Cluster;
    pub use crate::config::{Backend, EngineConfig, OverheadMode};
    pub use crate::cost::CostModel;
    pub use crate::driver::{BatchRecord, ReduceStrategy, RunResult, RunSummary, StreamingEngine};
    pub use crate::elasticity::{AutoScaler, Observation, ScaleAction, ScalerConfig};
    pub use crate::job::{Job, JobSpec, MapSpec, ReduceOp};
    pub use crate::net::{
        DistributedOptions, DistributedRuntime, LaunchMode, NetStats, WorkerLoss,
    };
    pub use crate::policy::{
        build_policy, AdaptiveConfig, AdaptivePolicy, BatchObservation, FixedPolicy,
        ForcedSequencePolicy, PartitionerPolicy, PolicyDecision, PolicySpec,
    };
    pub use crate::rebalance::{
        group_of, group_weights, imbalance_ratio, AutoRebalance, ForcedMigrations, ForcedRebalance,
        GroupMove, GroupRoutedAssigner, LoadLedger, MigrationPlan, RebalanceConfig,
        RebalanceObservation, RebalancePolicy, RebalanceSpec, RoutingTable, GROUP_HASH_SEED,
    };
    pub use crate::recovery::{
        FaultPlan, FaultPoint, NetFault, NetFaultPlan, RecoveryError, ReplicatedBatchStore,
    };
    pub use crate::reorder::ReorderingReceiver;
    pub use crate::source::TupleSource;
    pub use crate::stage::{execute_batch, times_from_stats, BatchOutput, BucketStats, StageTimes};
    pub use crate::state::{
        CheckpointConfig, CheckpointError, Checkpointer, KeyedStateStore, MigrationReport,
        StateDelta, StateStats, StatefulOp,
    };
    pub use crate::stats::{percentile_sorted, summarize, Summary};
    pub use crate::straggler::{Stage, StragglerEvent, StragglerPlan};
    pub use crate::tenancy::{
        fair_makespans, parse_tagged_jsonl, tagged_jsonl, MultiTenantEngine, MultiTenantResult,
        NoisyNeighbor, TenantRun, TenantSpec,
    };
    pub use crate::threaded::{ThreadedExecutor, WallTimes};
    pub use crate::trace::{
        parse_jsonl, to_jsonl, Counter, StageKind, StageSummary, TraceEvent, TraceLevel,
        TraceRecorder, TraceSummary, PROCESSING_KINDS,
    };
    pub use crate::window::{WindowResult, WindowSpec, WindowState};
}
