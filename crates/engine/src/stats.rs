//! Small summary-statistics helpers used by the experiment harness and the
//! latency-distribution analyses (Fig. 13).

/// A distribution summary.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

/// Nearest-rank percentile of a **sorted** slice (`p` in `[0, 1]`):
/// the smallest element such that at least `p·n` of the sample is ≤ it,
/// i.e. index `⌈p·n⌉ − 1` (clamped to the slice). `p = 0` returns the
/// minimum and `p = 1` the maximum. Returns 0 for an empty slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile in [0, 1]");
    if sorted.is_empty() {
        return 0.0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let n = sorted.len();
    let rank = (p * n as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(n - 1)]
}

/// Summarise a sample (copies and sorts internally).
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    Summary {
        n,
        mean,
        std: var.sqrt(),
        min: sorted[0],
        p5: percentile_sorted(&sorted, 0.05),
        p50: percentile_sorted(&sorted, 0.50),
        p95: percentile_sorted(&sorted, 0.95),
        max: sorted[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = summarize(&values);
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.p50, 50.0); // nearest-rank: index ceil(0.50 * 100) - 1 = 49
        assert_eq!(s.p5, 5.0); // index ceil(0.05 * 100) - 1 = 4
        assert_eq!(s.p95, 95.0); // index ceil(0.95 * 100) - 1 = 94
        assert!((s.std - 28.866).abs() < 0.01);
    }

    #[test]
    fn empty_sample() {
        assert_eq!(summarize(&[]), Summary::default());
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn single_value() {
        let s = summarize(&[7.0]);
        assert_eq!((s.mean, s.min, s.max, s.p50), (7.0, 7.0, 7.0, 7.0));
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn percentile_bounds() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 1.0), 3.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computed_table() {
        // The canonical nearest-rank worked example: ordered sample of 5,
        // rank = ceil(p·n), percentile = the rank-th smallest element.
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        for (p, want) in [
            (0.05, 15.0), // ceil(0.25) = 1st
            (0.20, 15.0), // ceil(1.00) = 1st
            (0.30, 20.0), // ceil(1.50) = 2nd
            (0.40, 20.0), // ceil(2.00) = 2nd
            (0.50, 35.0), // ceil(2.50) = 3rd
            (0.60, 35.0), // ceil(3.00) = 3rd
            (0.95, 50.0), // ceil(4.75) = 5th
            (1.00, 50.0), // ceil(5.00) = 5th
        ] {
            assert_eq!(percentile_sorted(&v, p), want, "p = {p}");
        }
        // Even spacing: every nearest-rank value is an actual sample point,
        // never an interpolation.
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        for (p, want) in [(0.1, 1.0), (0.11, 2.0), (0.5, 5.0), (0.51, 6.0), (0.9, 9.0)] {
            assert_eq!(percentile_sorted(&v, p), want, "p = {p}");
        }
    }

    #[test]
    #[should_panic(expected = "percentile in [0, 1]")]
    fn percentile_out_of_range() {
        percentile_sorted(&[1.0], 1.5);
    }

    #[test]
    fn unsorted_input_is_handled_by_summarize() {
        let s = summarize(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }
}
