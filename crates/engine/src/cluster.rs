//! The simulated cluster: executors × cores and stage makespan scheduling.
//!
//! The paper's testbed is 20 EC2 nodes of 16 cores (§7); our stand-in is a
//! pool of task slots. A stage's duration is the makespan of placing its
//! task durations onto the slots with the greedy
//! Longest-Processing-Time-first (LPT) rule — when tasks ≤ slots this is
//! exactly Eqn. 1's `max_i TaskTime_i`; with more tasks than slots it models
//! Spark's wave scheduling.

use prompt_core::types::Duration;

/// A pool of homogeneous task slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cluster {
    /// Number of executor processes (nodes × executors-per-node).
    pub executors: usize,
    /// Cores (task slots) per executor.
    pub cores_per_executor: usize,
}

impl Cluster {
    /// A cluster with the given shape.
    ///
    /// Panics on an empty shape (`executors == 0` or
    /// `cores_per_executor == 0`); use [`Cluster::try_new`] where the shape
    /// comes from configuration rather than code.
    pub fn new(executors: usize, cores_per_executor: usize) -> Cluster {
        Cluster::try_new(executors, cores_per_executor).expect("empty cluster")
    }

    /// Fallible [`Cluster::new`]: reports an empty shape as an error instead
    /// of panicking, for validating user-supplied configuration.
    pub fn try_new(executors: usize, cores_per_executor: usize) -> Result<Cluster, String> {
        if executors == 0 || cores_per_executor == 0 {
            return Err(format!(
                "empty cluster: executors = {executors}, cores_per_executor = {cores_per_executor}"
            ));
        }
        Ok(Cluster {
            executors,
            cores_per_executor,
        })
    }

    /// Total task slots.
    #[inline]
    pub fn slots(&self) -> usize {
        self.executors * self.cores_per_executor
    }

    /// Makespan of running `tasks` on the cluster's slots using LPT.
    ///
    /// Returns [`Duration::ZERO`] for an empty task set.
    pub fn makespan(&self, tasks: &[Duration]) -> Duration {
        makespan_on_slots(tasks, self.slots())
    }
}

/// LPT makespan over an explicit slot count (used by the elasticity
/// controller to evaluate hypothetical parallelism levels).
pub fn makespan_on_slots(tasks: &[Duration], slots: usize) -> Duration {
    assert!(slots > 0, "need at least one slot");
    if tasks.is_empty() {
        return Duration::ZERO;
    }
    if tasks.len() <= slots {
        return *tasks.iter().max().expect("non-empty");
    }
    let mut sorted: Vec<Duration> = tasks.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    // Binary heap of (load) would be O(n log m); slots are small, a linear
    // scan for the min-loaded slot is fine at this scale.
    let mut loads = vec![Duration::ZERO; slots];
    for t in sorted {
        let min = loads
            .iter_mut()
            .min_by_key(|l| l.0)
            .expect("slots non-empty");
        *min += t;
    }
    loads.into_iter().max().expect("slots non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(us: u64) -> Duration {
        Duration::from_micros(us)
    }

    #[test]
    fn fewer_tasks_than_slots_is_max() {
        let c = Cluster::new(2, 4);
        assert_eq!(c.slots(), 8);
        let tasks = [d(5), d(9), d(3)];
        assert_eq!(c.makespan(&tasks), d(9));
    }

    #[test]
    fn wave_scheduling_packs_lpt() {
        // 4 tasks of 10,10,10,10 on 2 slots → 20 each.
        assert_eq!(makespan_on_slots(&[d(10); 4], 2), d(20));
        // 5,4,3,3,3 on 2 slots: LPT → slot1: 5+3+3=11, slot2: 4+3=7... →
        // LPT places 5,4 then 3→slot2 (7), 3→slot1 (8), 3→slot2 (10): max 10.
        assert_eq!(makespan_on_slots(&[d(5), d(4), d(3), d(3), d(3)], 2), d(10));
    }

    #[test]
    fn empty_tasks_zero_makespan() {
        assert_eq!(makespan_on_slots(&[], 4), Duration::ZERO);
    }

    #[test]
    fn single_slot_sums_everything() {
        assert_eq!(makespan_on_slots(&[d(1), d(2), d(3)], 1), d(6));
    }

    #[test]
    #[should_panic(expected = "empty cluster")]
    fn zero_cores_rejected() {
        let _ = Cluster::new(1, 0);
    }

    #[test]
    fn try_new_reports_instead_of_panicking() {
        assert!(Cluster::try_new(0, 8).is_err());
        assert!(Cluster::try_new(8, 0).is_err());
        assert_eq!(Cluster::try_new(2, 8), Ok(Cluster::new(2, 8)));
    }

    #[test]
    fn imbalanced_tasks_dominate_makespan() {
        // One straggler defines the stage time — the paper's Fig. 2 story.
        let c = Cluster::new(1, 8);
        let mut tasks = vec![d(100); 7];
        tasks.push(d(900));
        assert_eq!(c.makespan(&tasks), d(900));
    }
}
