//! Environment-induced straggler injection.
//!
//! Fig. 2's unbalanced-load cases arise from *partitioning*; real clusters
//! additionally produce stragglers from the environment — GC pauses, noisy
//! neighbours, slow disks. This module scripts such events so tests and
//! experiments can measure how scheduling reacts to a task suddenly running
//! `k×` slower, independently of partitioning quality.

use prompt_core::types::Duration;

/// Which stage a straggler event hits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// A Map task (block processing).
    Map,
    /// A Reduce task (bucket aggregation).
    Reduce,
}

/// One scripted slowdown: task `task` of `stage` in batch `batch` runs
/// `slowdown ×` its modelled time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerEvent {
    /// Batch sequence number the event fires in.
    pub batch: u64,
    /// Stage hit.
    pub stage: Stage,
    /// Task index within the stage (ignored if out of range that batch).
    pub task: usize,
    /// Multiplicative slowdown (≥ 1).
    pub slowdown: f64,
}

/// A scripted set of straggler events.
#[derive(Clone, Debug, Default)]
pub struct StragglerPlan {
    events: Vec<StragglerEvent>,
}

impl StragglerPlan {
    /// No stragglers.
    pub fn none() -> StragglerPlan {
        StragglerPlan::default()
    }

    /// Add one event.
    pub fn slow(mut self, batch: u64, stage: Stage, task: usize, slowdown: f64) -> StragglerPlan {
        assert!(slowdown >= 1.0, "slowdown must be ≥ 1");
        self.events.push(StragglerEvent {
            batch,
            stage,
            task,
            slowdown,
        });
        self
    }

    /// A periodic plan: every `period` batches, the given task of `stage`
    /// runs `slowdown ×` slower — a crude noisy-neighbour model.
    pub fn periodic(
        stage: Stage,
        task: usize,
        slowdown: f64,
        period: u64,
        batches: u64,
    ) -> StragglerPlan {
        assert!(period >= 1);
        let mut plan = StragglerPlan::none();
        let mut b = 0;
        while b < batches {
            plan = plan.slow(b, stage, task, slowdown);
            b += period;
        }
        plan
    }

    /// Whether any event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events scheduled for batch `seq` (the observability layer
    /// records these alongside [`StragglerPlan::apply`]).
    pub fn events_for(&self, seq: u64) -> impl Iterator<Item = &StragglerEvent> {
        self.events.iter().filter(move |e| e.batch == seq)
    }

    /// Apply this plan's events for batch `seq` to the per-task times.
    /// Out-of-range task indices are ignored (the batch may have fewer
    /// tasks than the script assumed).
    pub fn apply(&self, seq: u64, map_tasks: &mut [Duration], reduce_tasks: &mut [Duration]) {
        for e in self.events.iter().filter(|e| e.batch == seq) {
            let target = match e.stage {
                Stage::Map => map_tasks.get_mut(e.task),
                Stage::Reduce => reduce_tasks.get_mut(e.task),
            };
            if let Some(d) = target {
                *d = d.mul_f64(e.slowdown);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn apply_inflates_only_the_target() {
        let plan = StragglerPlan::none()
            .slow(3, Stage::Map, 1, 4.0)
            .slow(3, Stage::Reduce, 0, 2.0);
        let mut maps = vec![d(10), d(10), d(10)];
        let mut reduces = vec![d(20), d(20)];
        plan.apply(2, &mut maps, &mut reduces);
        assert_eq!(maps, vec![d(10), d(10), d(10)], "wrong batch: no-op");
        plan.apply(3, &mut maps, &mut reduces);
        assert_eq!(maps, vec![d(10), d(40), d(10)]);
        assert_eq!(reduces, vec![d(40), d(20)]);
    }

    #[test]
    fn out_of_range_task_is_ignored() {
        let plan = StragglerPlan::none().slow(0, Stage::Map, 99, 10.0);
        let mut maps = vec![d(5)];
        let mut reduces = vec![];
        plan.apply(0, &mut maps, &mut reduces);
        assert_eq!(maps, vec![d(5)]);
    }

    #[test]
    fn periodic_covers_the_expected_batches() {
        let plan = StragglerPlan::periodic(Stage::Reduce, 0, 3.0, 4, 10);
        assert!(!plan.is_empty());
        let hit = |seq: u64| {
            let mut maps = vec![];
            let mut reduces = vec![d(10)];
            plan.apply(seq, &mut maps, &mut reduces);
            reduces[0] != d(10)
        };
        assert!(hit(0) && hit(4) && hit(8));
        assert!(!hit(1) && !hit(9));
    }

    #[test]
    #[should_panic(expected = "slowdown must be ≥ 1")]
    fn speedups_rejected() {
        let _ = StragglerPlan::none().slow(0, Stage::Map, 0, 0.5);
    }
}
