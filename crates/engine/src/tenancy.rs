//! Multi-tenant execution: N concurrent jobs sharing one cluster.
//!
//! The ROADMAP north-star is a production-scale deployment serving many
//! concurrent queries, but every figure-reproduction drives exactly one job.
//! [`MultiTenantEngine`] closes that gap: each tenant keeps its own
//! partitioner, reduce assigner and window state (so query answers are — by
//! construction — bit-identical to the tenant running alone), while the
//! tenants *compete for task slots* through a weighted-fair scheduler that
//! replaces the per-job LPT makespan of
//! [`Cluster::makespan`](crate::cluster::Cluster::makespan). Contention
//! is therefore purely a timing effect: latency, queueing and back-pressure
//! are per-tenant (isolated), and a [`NoisyNeighbor`] injector can inflate
//! one tenant's task times to measure how well the fair scheduler protects
//! the others.
//!
//! With a single tenant the fair scheduler degenerates bit-exactly to the
//! LPT rule, so a solo [`MultiTenantEngine`] run reproduces
//! [`StreamingEngine`](crate::driver::StreamingEngine) timings too.
//!
//! Tenant batches commit *jointly* at each heartbeat — phase 2's shared-slot
//! schedule needs every tenant's stage times for the same seq — so the
//! multi-tenant loop always runs one lifecycle per heartbeat:
//! [`EngineConfig::pipeline_depth`](crate::config::EngineConfig) is accepted
//! but inert here (the distributed path goes through the runtime's
//! submit-then-wait compatibility wrapper, i.e. effective depth 1), and a
//! `pipeline_depth > 1` config is bit-identical to depth 1 for every
//! tenant.

use prompt_core::batch::MicroBatch;
use prompt_core::metrics::PlanMetrics;
use prompt_core::partitioner::{Partitioner, Technique};
use prompt_core::reduce::ReduceAssigner;
use prompt_core::types::{Duration, Interval, Time, Tuple};

use crate::config::{Backend, EngineConfig, OverheadMode};
use crate::driver::{BatchRecord, ReduceStrategy, StrategySet};
use crate::job::{Job, JobSpec};
use crate::net::{DistributedOptions, DistributedRuntime};
use crate::policy::{build_policy, BatchObservation, PartitionerPolicy, PolicySpec};
use crate::rebalance::{
    group_weights, imbalance_ratio, ForcedMigrations, GroupRoutedAssigner, RebalanceObservation,
    RebalancePolicy, RoutingTable, SharedRoutingTable,
};
use crate::source::TupleSource;
use crate::stage::{execute_batch_traced, times_from_stats, BatchOutput, StageTimes};
use crate::threaded::ThreadedExecutor;
use crate::trace::{Counter, StageKind, TraceEvent, TraceRecorder};
use crate::window::{WindowResult, WindowSpec, WindowState};

/// One tenant job in a shared-cluster run.
pub struct TenantSpec {
    /// Tenant name (used to tag trace lines; must not contain `"`).
    pub name: String,
    /// Batching technique (paired with its natural reduce strategy).
    pub technique: Technique,
    /// Seed for the tenant's partitioner/assigner routing.
    pub seed: u64,
    /// The tenant's query.
    pub job: Job,
    /// Optional window maintained over the tenant's batch outputs.
    pub window: Option<WindowSpec>,
    /// Fair-share weight (≥ 1): a weight-2 tenant is entitled to twice the
    /// slot time of a weight-1 tenant under contention.
    pub weight: u32,
    /// Which partitioner runs each of this tenant's batches. `Fixed` (the
    /// default) keeps [`TenantSpec::technique`] for the whole run; a
    /// non-`Fixed` spec hot-swaps per batch exactly like the solo driver,
    /// with `technique` as batch 0's strategy.
    pub policy: PolicySpec,
}

impl TenantSpec {
    /// A weight-1, windowless tenant.
    pub fn new(name: impl Into<String>, technique: Technique, seed: u64, job: Job) -> TenantSpec {
        let name = name.into();
        assert!(!name.contains('"'), "tenant names must not contain quotes");
        TenantSpec {
            name,
            technique,
            seed,
            job,
            window: None,
            weight: 1,
            policy: PolicySpec::default(),
        }
    }

    /// Attach a window computation.
    pub fn with_window(mut self, spec: WindowSpec) -> TenantSpec {
        self.window = Some(spec);
        self
    }

    /// Set the partitioner-selection policy (validated at engine build).
    pub fn with_policy(mut self, policy: PolicySpec) -> TenantSpec {
        self.policy = policy;
        self
    }

    /// Set the fair-share weight.
    pub fn with_weight(mut self, weight: u32) -> TenantSpec {
        assert!(weight >= 1, "weights start at 1");
        self.weight = weight;
        self
    }
}

/// Scripted interference: inflate one tenant's task times over a batch
/// range, as if its executors were colocated with an antagonist. Timing
/// only — outputs are never touched.
#[derive(Clone, Copy, Debug)]
pub struct NoisyNeighbor {
    /// Index of the tenant to slow down.
    pub tenant: usize,
    /// First affected batch seq (inclusive).
    pub from_seq: u64,
    /// Last affected batch seq (exclusive).
    pub until_seq: u64,
    /// Multiplier applied to every task time (> 1 slows down).
    pub slowdown: f64,
}

impl NoisyNeighbor {
    /// Whether this injection hits `(tenant, seq)`.
    fn applies(&self, tenant: usize, seq: u64) -> bool {
        tenant == self.tenant && (self.from_seq..self.until_seq).contains(&seq)
    }
}

/// Per-tenant outcome of a shared-cluster run.
pub struct TenantRun {
    /// The tenant's name.
    pub name: String,
    /// One record per batch (timings reflect shared-cluster contention).
    pub batches: Vec<BatchRecord>,
    /// Emitted window results.
    pub windows: Vec<WindowResult>,
    /// Whether *this tenant's* queue crossed the back-pressure threshold.
    pub backpressure: bool,
    /// Distributed worker losses recovered during this tenant's batches.
    pub worker_losses: u64,
    /// Migration plans this tenant's rebalancer applied, in batch order —
    /// replaying them through
    /// [`RebalanceSpec::Forced`](crate::rebalance::RebalanceSpec) on a solo
    /// engine reproduces the tenant's routing bit for bit. Empty when
    /// [`EngineConfig::rebalance`](crate::config::EngineConfig) is off.
    pub migrations: ForcedMigrations,
    /// Per-batch slot-contention penalty: how much longer the tenant's
    /// stages took under sharing than they would have alone (LPT).
    pub slot_waits: Vec<Duration>,
    /// The tenant's trace (tag with [`tagged_jsonl`] before merging).
    pub trace: TraceRecorder,
}

/// Outcome of [`MultiTenantEngine::run`].
pub struct MultiTenantResult {
    /// One entry per tenant, in spec order.
    pub tenants: Vec<TenantRun>,
}

impl MultiTenantResult {
    /// All tenants' traces merged into one tenant-tagged JSONL stream.
    pub fn tagged_trace_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.tenants {
            out.push_str(&tagged_jsonl(&t.name, &t.trace));
        }
        out
    }
}

/// Render a tenant's trace as JSONL with `"tenant":"name"` injected as the
/// first field of every line, so merged multi-tenant streams stay
/// attributable. Round-trips through [`parse_tagged_jsonl`].
pub fn tagged_jsonl(name: &str, rec: &TraceRecorder) -> String {
    let mut out = String::new();
    for line in rec.to_jsonl().lines() {
        let rest = line.strip_prefix('{').expect("trace lines are objects");
        out.push_str(&format!("{{\"tenant\":\"{name}\",{rest}\n"));
    }
    out
}

/// Parse a tenant-tagged JSONL stream back into `(tenant, event)` pairs.
pub fn parse_tagged_jsonl(text: &str) -> Result<Vec<(String, TraceEvent)>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("{\"tenant\":\"")
            .ok_or_else(|| format!("line {}: missing tenant tag", i + 1))?;
        let (name, event_rest) = rest
            .split_once("\",")
            .ok_or_else(|| format!("line {}: malformed tenant tag", i + 1))?;
        let events = crate::trace::parse_jsonl(&format!("{{{event_rest}"))?;
        let event = events
            .into_iter()
            .next()
            .ok_or_else(|| format!("line {}: empty event", i + 1))?;
        out.push((name.to_string(), event));
    }
    Ok(out)
}

/// Weighted-fair slot scheduling for one stage: every tenant's tasks are
/// considered in LPT order, the next placement always goes to the tenant
/// with the smallest `allocated / weight` ratio (ties to the lowest
/// index), and each task lands on the least-loaded slot — the same
/// placement rule as [`makespan_on_slots`](crate::cluster::makespan_on_slots).
/// Returns each tenant's completion time (the finish of its last task).
///
/// With one tenant this is exactly LPT, so the returned makespan equals
/// [`Cluster::makespan`](crate::cluster::Cluster::makespan) bit-for-bit.
pub fn fair_makespans(tenants: &[(u32, Vec<Duration>)], slots: usize) -> Vec<Duration> {
    assert!(slots > 0, "need at least one slot");
    let mut queues: Vec<Vec<Duration>> = tenants
        .iter()
        .map(|(_, tasks)| {
            let mut sorted = tasks.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted.reverse(); // pop() takes the longest remaining task
            sorted
        })
        .collect();
    let mut allocated = vec![0u64; tenants.len()];
    let mut finish = vec![Duration::ZERO; tenants.len()];
    let mut loads = vec![Duration::ZERO; slots];
    loop {
        // Next tenant: smallest allocated/weight with tasks left, exact
        // arithmetic via cross-multiplication, ties to the lowest index.
        let mut pick: Option<usize> = None;
        for (i, q) in queues.iter().enumerate() {
            if q.is_empty() {
                continue;
            }
            pick = Some(match pick {
                None => i,
                Some(j) => {
                    let lhs = allocated[i] as u128 * tenants[j].0 as u128;
                    let rhs = allocated[j] as u128 * tenants[i].0 as u128;
                    if lhs < rhs {
                        i
                    } else {
                        j
                    }
                }
            });
        }
        let Some(i) = pick else { break };
        let task = queues[i].pop().expect("picked tenant has tasks");
        allocated[i] += task.0;
        // First minimum wins, matching `makespan_on_slots`'s min_by_key.
        let slot = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.0)
            .map(|(s, _)| s)
            .expect("slots non-empty");
        loads[slot] += task;
        finish[i] = finish[i].max(loads[slot]);
    }
    finish
}

/// The execution backend shared by all tenants of one run.
enum SharedBackend {
    InProcess,
    Threaded(ThreadedExecutor),
    Distributed {
        rt: Box<DistributedRuntime>,
        specs: Vec<JobSpec>,
    },
}

/// Per-tenant mutable state across the run.
struct TenantState {
    partitioner: Box<dyn Partitioner>,
    assigner: Box<dyn ReduceAssigner>,
    /// Per-technique strategy pool; `Some` exactly when `policy` is.
    strategies: Option<StrategySet>,
    /// Per-batch technique selection for non-`Fixed` tenant policies.
    policy: Option<Box<dyn PartitionerPolicy>>,
    /// Key-group routing table; `Some` exactly when the config rebalances.
    /// Each tenant owns an independent table — streams, loads and
    /// migrations are tenant-local.
    routing: Option<SharedRoutingTable>,
    /// The rebalancing policy; `Some` exactly when `routing` is.
    rebalancer: Option<Box<dyn RebalancePolicy>>,
    /// Last committed batch's reduce imbalance (context for trace events).
    last_imbalance: f64,
    window: Option<WindowState>,
    pipeline_free_at: Time,
    run: TenantRun,
}

/// N concurrent jobs on one shared cluster (see the module docs).
pub struct MultiTenantEngine {
    cfg: EngineConfig,
    tenants: Vec<TenantSpec>,
    noisy: Vec<NoisyNeighbor>,
}

impl MultiTenantEngine {
    /// Build a shared-cluster engine for `tenants` under `cfg`. The config's
    /// task counts, cost model, cluster shape, overhead mode, back-pressure
    /// threshold, trace level and backend apply to every tenant.
    pub fn new(cfg: EngineConfig, tenants: Vec<TenantSpec>) -> MultiTenantEngine {
        cfg.validate().expect("invalid engine config");
        assert!(!tenants.is_empty(), "need at least one tenant");
        for t in &tenants {
            t.policy
                .validate()
                .unwrap_or_else(|e| panic!("tenant '{}' policy invalid: {e}", t.name));
        }
        MultiTenantEngine {
            cfg,
            tenants,
            noisy: Vec::new(),
        }
    }

    /// Attach noisy-neighbor injections.
    pub fn with_noisy_neighbors(mut self, noisy: Vec<NoisyNeighbor>) -> MultiTenantEngine {
        for n in &noisy {
            assert!(n.tenant < self.tenants.len(), "noisy tenant out of range");
            assert!(n.slowdown > 0.0, "slowdown must be positive");
        }
        self.noisy = noisy;
        self
    }

    /// Access the configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Run all tenants for `n_batches` heartbeats, tenant `i` reading from
    /// `sources[i]`. Within each heartbeat every tenant's batch is
    /// partitioned and executed with its own partitioner/assigner/window
    /// (outputs identical to a solo run), then both stages are scheduled
    /// jointly on the shared slots by [`fair_makespans`] — the timing each
    /// tenant's [`BatchRecord`]s report.
    pub fn run(
        &mut self,
        sources: &mut [Box<dyn TupleSource>],
        n_batches: usize,
    ) -> MultiTenantResult {
        assert_eq!(
            sources.len(),
            self.tenants.len(),
            "one source per tenant required"
        );
        let bi = self.cfg.batch_interval;
        let n_tenants = self.tenants.len();
        let mut backend = match self.cfg.backend {
            Backend::InProcess => SharedBackend::InProcess,
            Backend::Threaded { threads } => {
                SharedBackend::Threaded(ThreadedExecutor::new(threads))
            }
            Backend::Distributed { workers, base_port } => {
                let specs: Vec<JobSpec> = self
                    .tenants
                    .iter()
                    .map(|t| {
                        t.job.wire_spec().expect(
                            "Backend::Distributed needs wire-serialisable tenant jobs \
                             (build them with Job::identity)",
                        )
                    })
                    .collect();
                let rt = DistributedRuntime::launch(DistributedOptions::new(workers, base_port))
                    .expect("failed to launch distributed workers");
                SharedBackend::Distributed {
                    rt: Box::new(rt),
                    specs,
                }
            }
        };
        let mut states: Vec<TenantState> = self
            .tenants
            .iter()
            .map(|spec| {
                // Rebalancing tenants route through their own key-group
                // table; the recorded plans replay on a solo engine (the
                // cell oracle), mirroring the solo driver's wiring.
                let routing: Option<SharedRoutingTable> =
                    self.cfg.rebalance.n_groups().map(|n_groups| {
                        std::sync::Arc::new(std::sync::Mutex::new(RoutingTable::new(
                            n_groups,
                            self.cfg.reduce_tasks,
                        )))
                    });
                let assigner: Box<dyn ReduceAssigner> = match &routing {
                    Some(table) => Box::new(GroupRoutedAssigner::new(std::sync::Arc::clone(table))),
                    None => ReduceStrategy::for_technique(spec.technique).build_boxed(spec.seed),
                };
                TenantState {
                    partitioner: spec.technique.build(spec.seed),
                    assigner,
                    strategies: (!spec.policy.is_fixed())
                        .then(|| StrategySet::new(spec.seed, 1, 1)),
                    policy: (!spec.policy.is_fixed())
                        .then(|| build_policy(&spec.policy, spec.technique, spec.seed)),
                    routing,
                    rebalancer: self.cfg.rebalance.build(),
                    last_imbalance: 1.0,
                    window: spec
                        .window
                        .map(|w| WindowState::new(w, bi, spec.job.reduce)),
                    pipeline_free_at: Time::ZERO,
                    run: TenantRun {
                        name: spec.name.clone(),
                        batches: Vec::with_capacity(n_batches),
                        windows: Vec::new(),
                        backpressure: false,
                        worker_losses: 0,
                        migrations: Vec::new(),
                        slot_waits: Vec::with_capacity(n_batches),
                        trace: TraceRecorder::new(self.cfg.trace),
                    },
                }
            })
            .collect();
        let p = self.cfg.map_tasks;
        let r = self.cfg.reduce_tasks;
        let n_groups = self.cfg.rebalance.n_groups().unwrap_or(0);
        let mut arrivals: Vec<Tuple> = Vec::new();

        for seq in 0..n_batches as u64 {
            let interval = Interval::new(Time(bi.0 * seq), Time(bi.0 * (seq + 1)));
            // Phase 1: per-tenant ingest, partition and execute. Outputs and
            // per-task times are tenant-local; only slot time is shared.
            let mut outputs: Vec<BatchOutput> = Vec::with_capacity(n_tenants);
            let mut all_times: Vec<StageTimes> = Vec::with_capacity(n_tenants);
            let mut overheads: Vec<(Duration, Duration)> = Vec::with_capacity(n_tenants);
            let mut plan_stats: Vec<(usize, usize, usize, PlanMetrics, Technique)> =
                Vec::with_capacity(n_tenants);
            // Per-tenant key-group tuple weights of this heartbeat's plans
            // (`Some` only for rebalancing tenants) — the phase-3 ledger
            // observations decompose worker load with them.
            let mut group_tuples_all: Vec<Option<Vec<u64>>> = Vec::with_capacity(n_tenants);
            for (i, st) in states.iter_mut().enumerate() {
                let tracing = st.run.trace.enabled();
                arrivals.clear();
                sources[i].fill(interval, &mut arrivals);
                debug_assert!(
                    arrivals.windows(2).all(|w| w[0].ts <= w[1].ts),
                    "source must emit in timestamp order"
                );
                let batch = MicroBatch::new(std::mem::take(&mut arrivals), interval);
                let n_tuples = batch.len();
                let n_keys = batch.distinct_keys();
                st.run.trace.incr(Counter::Batches, 1);
                st.run.trace.incr(Counter::Tuples, n_tuples as u64);
                // Per-batch technique resolution, mirroring the solo driver:
                // a non-Fixed tenant policy may hot-swap the strategy here.
                let dec0 = std::time::Instant::now();
                let decision = st.policy.as_mut().map(|pol| pol.decide(seq));
                let decide_us = dec0.elapsed().as_micros() as u64;
                let technique = decision
                    .as_ref()
                    .map(|d| d.technique)
                    .unwrap_or(self.tenants[i].technique);
                if let Some(d) = decision.as_ref() {
                    st.run.trace.incr(Counter::PolicyDecisions, 1);
                    if d.switched {
                        st.run.trace.incr(Counter::PolicySwitches, 1);
                        st.run.trace.event(TraceEvent::PolicySwitch {
                            seq,
                            from: d.prev.label(),
                            to: d.technique.label(),
                        });
                    }
                    if tracing {
                        st.run.trace.phase(
                            seq,
                            StageKind::Select,
                            Duration::from_micros(decide_us),
                        );
                    }
                }
                // Rebalance boundary, mirroring the solo driver's fill
                // phase: apply the policy's plan before this batch is
                // partitioned and assigned. Tenancy has no keyed-state
                // layer, so group moves carry no payload bytes.
                if let (Some(reb), Some(table)) = (st.rebalancer.as_mut(), st.routing.as_ref()) {
                    let mplan = reb.decide(seq);
                    if !mplan.is_empty() {
                        let version = {
                            let mut t = table.lock().expect("routing table poisoned");
                            t.apply(&mplan).expect("rebalance plan must apply cleanly");
                            t.version()
                        };
                        st.run.trace.incr(Counter::Rebalances, 1);
                        st.run
                            .trace
                            .incr(Counter::GroupsMoved, mplan.moves.len() as u64);
                        st.run.trace.event(TraceEvent::Rebalance {
                            seq,
                            version,
                            moves: mplan.moves.len() as u64,
                            imbalance: st.last_imbalance,
                        });
                        for mv in &mplan.moves {
                            st.run.trace.event(TraceEvent::GroupMigrate {
                                seq,
                                group: mv.group,
                                from: mv.from,
                                to: mv.to,
                                bytes: 0,
                            });
                        }
                        st.run.migrations.push((seq, mplan));
                    }
                }
                let (part, asg): (&mut dyn Partitioner, &mut dyn ReduceAssigner) =
                    match (st.strategies.as_mut(), decision.as_ref()) {
                        (Some(set), Some(d)) => set.pair_mut(d.technique),
                        _ => (st.partitioner.as_mut(), st.assigner.as_mut()),
                    };
                let t0 = std::time::Instant::now();
                let plan = part.partition(&batch, p);
                let raw_overhead = match self.cfg.overhead {
                    OverheadMode::None => Duration::ZERO,
                    OverheadMode::Fixed(d) => d,
                    OverheadMode::Measured => {
                        Duration::from_micros(t0.elapsed().as_micros() as u64)
                    }
                };
                let visible_overhead = raw_overhead - self.cfg.early_release_slack();
                let metrics = PlanMetrics::of(&plan);
                if let Some(pol) = st.policy.as_mut() {
                    pol.observe(&BatchObservation {
                        seq,
                        technique,
                        n_tuples,
                        n_keys,
                        map_tasks: p,
                        metrics,
                        plan: &plan,
                    });
                }
                let (output, mut times) = match &mut backend {
                    SharedBackend::InProcess => execute_batch_traced(
                        &plan,
                        &self.tenants[i].job,
                        asg,
                        r,
                        &self.cfg.cost,
                        &self.cfg.cluster,
                        tracing.then_some(&st.run.trace),
                    ),
                    SharedBackend::Threaded(exec) => {
                        let (output, stats, _wall) = exec.execute_with_stats(
                            &plan,
                            &self.tenants[i].job,
                            asg,
                            r,
                            tracing.then_some((&st.run.trace, seq)),
                        );
                        let times =
                            times_from_stats(&plan, &stats, &self.cfg.cost, &self.cfg.cluster);
                        (output, times)
                    }
                    SharedBackend::Distributed { rt, specs } => {
                        // Namespace batch seqs so tenants never collide in
                        // the workers' per-batch shuffle state.
                        let wire_seq = seq * n_tenants as u64 + i as u64;
                        let mut attempt_plan = None;
                        loop {
                            let use_plan = attempt_plan.as_ref().unwrap_or(&plan);
                            match rt.execute_batch(
                                wire_seq,
                                use_plan,
                                &specs[i],
                                &mut *asg,
                                r,
                                tracing.then_some((&st.run.trace, seq)),
                            ) {
                                Ok((output, stats)) => {
                                    let times = times_from_stats(
                                        use_plan,
                                        &stats,
                                        &self.cfg.cost,
                                        &self.cfg.cluster,
                                    );
                                    break (output, times);
                                }
                                Err(loss) => {
                                    // The batch input is still in hand:
                                    // re-partition for the survivors and
                                    // retry. Failed attempts make no
                                    // assigner calls and add no time.
                                    st.run.worker_losses += 1;
                                    if tracing {
                                        st.run.trace.incr(Counter::WorkersLost, 1);
                                        st.run.trace.event(TraceEvent::WorkerLost {
                                            seq,
                                            worker: loss.worker,
                                        });
                                    }
                                    attempt_plan = Some(part.partition(&batch, p));
                                }
                            }
                        }
                    }
                };
                for noise in self.noisy.iter().filter(|n| n.applies(i, seq)) {
                    for t in times.map_tasks.iter_mut().chain(&mut times.reduce_tasks) {
                        *t = t.mul_f64(noise.slowdown);
                    }
                }
                group_tuples_all.push(st.routing.is_some().then(|| group_weights(&plan, n_groups)));
                arrivals = batch.tuples; // reuse the allocation next tenant
                outputs.push(output);
                plan_stats.push((n_tuples, n_keys, plan.n_blocks(), metrics, technique));
                overheads.push((raw_overhead, visible_overhead));
                all_times.push(times);
            }

            // Phase 2: joint stage scheduling on the shared slots.
            let slots = self.cfg.cluster.slots();
            let weights: Vec<u32> = self.tenants.iter().map(|t| t.weight).collect();
            let map_input: Vec<(u32, Vec<Duration>)> = all_times
                .iter()
                .zip(&weights)
                .map(|(t, &w)| (w, t.map_tasks.clone()))
                .collect();
            let reduce_input: Vec<(u32, Vec<Duration>)> = all_times
                .iter()
                .zip(&weights)
                .map(|(t, &w)| (w, t.reduce_tasks.clone()))
                .collect();
            let map_spans = fair_makespans(&map_input, slots);
            let reduce_spans = fair_makespans(&reduce_input, slots);

            // Phase 3: per-tenant accounting (pipelining, back-pressure,
            // windows) — fully isolated.
            for (i, st) in states.iter_mut().enumerate() {
                let times = &all_times[i];
                let (raw_overhead, visible_overhead) = overheads[i];
                let (n_tuples, n_keys, n_blocks, metrics, technique) = plan_stats[i];
                let map_stage = map_spans[i];
                let reduce_stage = reduce_spans[i];
                let solo_map = self.cfg.cluster.makespan(&times.map_tasks);
                let solo_reduce = self.cfg.cluster.makespan(&times.reduce_tasks);
                let slot_wait = (map_stage - solo_map) + (reduce_stage - solo_reduce);
                let processing = visible_overhead + map_stage + reduce_stage;
                let heartbeat = interval.end;
                let start = if st.pipeline_free_at > heartbeat {
                    st.pipeline_free_at
                } else {
                    heartbeat
                };
                let queue_delay = start.since(heartbeat);
                st.pipeline_free_at = start + processing;
                let latency = bi + queue_delay + processing;
                let w = processing.as_secs_f64() / bi.as_secs_f64();

                let rec = &st.run.trace;
                if rec.enabled() {
                    rec.span(seq, StageKind::Accumulate, interval.start, interval.end);
                    rec.span(seq, StageKind::QueueWait, heartbeat, start);
                    let mut cursor = start;
                    rec.span(
                        seq,
                        StageKind::PartitionVisible,
                        cursor,
                        cursor + visible_overhead,
                    );
                    cursor = cursor + visible_overhead;
                    rec.span(seq, StageKind::MapStage, cursor, cursor + map_stage);
                    cursor = cursor + map_stage;
                    rec.span(seq, StageKind::ReduceStage, cursor, cursor + reduce_stage);
                    cursor = cursor + reduce_stage;
                    debug_assert_eq!(cursor, start + processing, "spans must tile processing");
                }
                if queue_delay.as_secs_f64() > self.cfg.backpressure_queue * bi.as_secs_f64() {
                    st.run.backpressure = true;
                    rec.incr(Counter::BackpressureBatches, 1);
                    rec.event(TraceEvent::Backpressure {
                        seq,
                        queue_us: queue_delay.0,
                        limit_us: bi.mul_f64(self.cfg.backpressure_queue).0,
                    });
                }
                // Ledger feed, mirroring the solo driver's commit phase:
                // per-worker busy time into the trace summary, and (for
                // rebalancing tenants) the observation the policy plans
                // from. Tenant-local cost-model times — a neighbor's slot
                // contention is not this tenant's skew.
                rec.worker_busy(&times.reduce_tasks);
                if let (Some(reb), Some(table)) = (st.rebalancer.as_mut(), st.routing.as_ref()) {
                    let busy: Vec<u64> = times.reduce_tasks.iter().map(|d| d.0).collect();
                    let group_tuples = group_tuples_all[i].take().unwrap_or_default();
                    let (version, owners) = {
                        let t = table.lock().expect("routing table poisoned");
                        (t.version(), t.owners().to_vec())
                    };
                    reb.observe(&RebalanceObservation {
                        seq,
                        version,
                        worker_busy_us: &busy,
                        group_tuples: &group_tuples,
                        owners: &owners,
                    });
                    st.last_imbalance = imbalance_ratio(&busy);
                }
                st.run.slot_waits.push(slot_wait);
                st.run.batches.push(BatchRecord {
                    seq,
                    n_tuples,
                    n_keys,
                    map_tasks: n_blocks,
                    reduce_tasks: r,
                    partition_overhead: raw_overhead,
                    visible_overhead,
                    map_stage,
                    reduce_stage,
                    processing,
                    queue_delay,
                    latency,
                    w,
                    map_task_times: times.map_tasks.clone(),
                    reduce_task_times: times.reduce_tasks.clone(),
                    plan_metrics: metrics,
                    technique: Some(technique),
                });
            }
            for (st, output) in states.iter_mut().zip(outputs) {
                if let Some(ws) = st.window.as_mut() {
                    if let Some(res) = ws.push(output) {
                        st.run.windows.push(res);
                    }
                }
            }
        }
        if let SharedBackend::Distributed { rt, .. } = &mut backend {
            rt.shutdown();
        }
        MultiTenantResult {
            tenants: states.into_iter().map(|s| s.run).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use crate::cost::CostModel;
    use crate::driver::StreamingEngine;
    use crate::job::ReduceOp;
    use crate::trace::TraceLevel;
    use prompt_core::types::Key;

    fn const_source(rate: usize, keys: u64, phase: u64) -> Box<dyn TupleSource> {
        Box::new(move |iv: Interval, out: &mut Vec<Tuple>| {
            let step = iv.len().0 / (rate as u64 + 1);
            for i in 0..rate {
                out.push(Tuple::keyed(
                    Time(iv.start.0 + step * (i as u64 + 1)),
                    Key((i as u64 + phase) % keys),
                ));
            }
        })
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            batch_interval: Duration::from_secs(1),
            map_tasks: 4,
            reduce_tasks: 4,
            cluster: Cluster::new(1, 4),
            cost: CostModel::default(),
            ..EngineConfig::default()
        }
    }

    fn tenant(name: &str, tech: Technique, seed: u64) -> TenantSpec {
        TenantSpec::new(name, tech, seed, Job::identity(name, ReduceOp::Count)).with_window(
            WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1)),
        )
    }

    #[test]
    fn solo_tenant_matches_streaming_engine_bit_for_bit() {
        let mut multi = MultiTenantEngine::new(cfg(), vec![tenant("a", Technique::Prompt, 7)]);
        let res = multi.run(&mut [const_source(900, 30, 0)], 8);
        let mut eng = StreamingEngine::new(
            cfg(),
            Technique::Prompt,
            7,
            Job::identity("a", ReduceOp::Count),
        )
        .with_window(WindowSpec::sliding(
            Duration::from_secs(3),
            Duration::from_secs(1),
        ));
        let solo = eng.run(&mut *const_source(900, 30, 0), 8);
        let t = &res.tenants[0];
        assert_eq!(t.batches.len(), solo.batches.len());
        for (a, b) in t.batches.iter().zip(&solo.batches) {
            assert_eq!(a.map_stage, b.map_stage, "batch {}", a.seq);
            assert_eq!(a.reduce_stage, b.reduce_stage);
            assert_eq!(a.processing, b.processing);
            assert_eq!(a.queue_delay, b.queue_delay);
            assert_eq!(a.plan_metrics, b.plan_metrics);
        }
        assert_eq!(t.windows.len(), solo.windows.len());
        for (a, b) in t.windows.iter().zip(&solo.windows) {
            assert_eq!(a.aggregates.len(), b.aggregates.len());
            for (k, v) in &a.aggregates {
                assert_eq!(v.to_bits(), b.aggregates[k].to_bits());
            }
        }
        assert!(t.slot_waits.iter().all(|&w| w == Duration::ZERO));
    }

    #[test]
    fn two_tenants_answers_match_solo_runs() {
        let specs = vec![
            tenant("a", Technique::Prompt, 1),
            tenant("b", Technique::Hash, 2),
        ];
        let mut multi = MultiTenantEngine::new(cfg(), specs);
        let res = multi.run(&mut [const_source(800, 20, 0), const_source(600, 15, 3)], 8);
        for (i, (tech, seed, rate, keys, phase)) in [
            (Technique::Prompt, 1, 800, 20, 0),
            (Technique::Hash, 2, 600, 15, 3),
        ]
        .into_iter()
        .enumerate()
        {
            let mut eng =
                StreamingEngine::new(cfg(), tech, seed, Job::identity("solo", ReduceOp::Count))
                    .with_window(WindowSpec::sliding(
                        Duration::from_secs(3),
                        Duration::from_secs(1),
                    ));
            let solo = eng.run(&mut *const_source(rate, keys, phase), 8);
            let t = &res.tenants[i];
            assert_eq!(t.windows.len(), solo.windows.len());
            for (a, b) in t.windows.iter().zip(&solo.windows) {
                for (k, v) in &a.aggregates {
                    assert_eq!(v.to_bits(), b.aggregates[k].to_bits(), "tenant {i}");
                }
            }
        }
    }

    #[test]
    fn pipeline_depth_config_is_inert_for_tenancy() {
        // The multi-tenant loop commits all tenants jointly per heartbeat,
        // so a deep in-flight window validates but changes nothing.
        let deep = EngineConfig {
            pipeline_depth: 4,
            ..cfg()
        };
        assert!(deep.validate().is_ok());
        let specs = || {
            vec![
                tenant("a", Technique::Prompt, 1),
                tenant("b", Technique::Hash, 2),
            ]
        };
        let mut base = MultiTenantEngine::new(cfg(), specs());
        let want = base.run(&mut [const_source(800, 20, 0), const_source(600, 15, 3)], 6);
        let mut piped = MultiTenantEngine::new(deep, specs());
        let got = piped.run(&mut [const_source(800, 20, 0), const_source(600, 15, 3)], 6);
        for (a, b) in want.tenants.iter().zip(&got.tenants) {
            assert_eq!(a.batches.len(), b.batches.len());
            for (x, y) in a.batches.iter().zip(&b.batches) {
                assert_eq!(x.processing, y.processing, "batch {}", x.seq);
                assert_eq!(x.plan_metrics, y.plan_metrics, "batch {}", x.seq);
            }
            assert_eq!(a.windows.len(), b.windows.len());
            for (x, y) in a.windows.iter().zip(&b.windows) {
                for (k, v) in &x.aggregates {
                    assert_eq!(v.to_bits(), y.aggregates[k].to_bits());
                }
            }
        }
    }

    #[test]
    fn contention_slows_tenants_but_not_their_answers() {
        // Make tasks expensive enough that two tenants contend for slots.
        let mut c = cfg();
        c.cost = CostModel {
            map_per_tuple: Duration::from_micros(300),
            ..CostModel::default()
        };
        let specs = vec![
            tenant("a", Technique::Prompt, 1),
            tenant("b", Technique::Prompt, 2),
        ];
        let mut multi = MultiTenantEngine::new(c, specs);
        let res = multi.run(&mut [const_source(800, 20, 0), const_source(800, 20, 7)], 6);
        let waited: u64 = res
            .tenants
            .iter()
            .flat_map(|t| t.slot_waits.iter().map(|d| d.0))
            .sum();
        assert!(waited > 0, "shared slots must create contention");
    }

    #[test]
    fn noisy_neighbor_hits_only_its_tenant_and_range() {
        let specs = || {
            vec![
                tenant("a", Technique::Prompt, 1),
                tenant("b", Technique::Prompt, 2),
            ]
        };
        let sources = || -> Vec<Box<dyn TupleSource>> {
            vec![const_source(500, 10, 0), const_source(500, 10, 5)]
        };
        let mut clean_eng = MultiTenantEngine::new(cfg(), specs());
        let clean = clean_eng.run(&mut sources()[..], 6);
        let mut noisy_eng =
            MultiTenantEngine::new(cfg(), specs()).with_noisy_neighbors(vec![NoisyNeighbor {
                tenant: 1,
                from_seq: 2,
                until_seq: 4,
                slowdown: 5.0,
            }]);
        let noisy = noisy_eng.run(&mut sources()[..], 6);
        for seq in 0..6usize {
            let (ca, na) = (
                &clean.tenants[1].batches[seq],
                &noisy.tenants[1].batches[seq],
            );
            if (2..4).contains(&seq) {
                assert!(na.processing > ca.processing, "batch {seq} must slow down");
            } else {
                assert_eq!(na.processing, ca.processing, "batch {seq} unaffected");
            }
        }
        // Answers never change — interference is timing-only.
        for (a, b) in clean.tenants[1]
            .windows
            .iter()
            .zip(&noisy.tenants[1].windows)
        {
            for (k, v) in &a.aggregates {
                assert_eq!(v.to_bits(), b.aggregates[k].to_bits());
            }
        }
    }

    #[test]
    fn weighted_tenants_get_proportional_protection() {
        // Two identical workloads; the weight-3 tenant must finish its
        // stages no later than the weight-1 tenant.
        let mut c = cfg();
        c.cost = CostModel {
            map_per_tuple: Duration::from_micros(400),
            ..CostModel::default()
        };
        let specs = vec![
            tenant("light", Technique::Prompt, 1).with_weight(1),
            tenant("heavy", Technique::Prompt, 1).with_weight(3),
        ];
        let mut multi = MultiTenantEngine::new(c, specs);
        let res = multi.run(&mut [const_source(900, 16, 0), const_source(900, 16, 0)], 4);
        let light: u64 = res.tenants[0].slot_waits.iter().map(|d| d.0).sum();
        let heavy: u64 = res.tenants[1].slot_waits.iter().map(|d| d.0).sum();
        assert!(
            heavy <= light,
            "weight-3 tenant waited {heavy} µs vs weight-1's {light} µs"
        );
    }

    #[test]
    fn fair_makespans_degenerate_to_lpt_for_one_tenant() {
        let d = |us: u64| Duration::from_micros(us);
        for tasks in [
            vec![d(5), d(4), d(3), d(3), d(3)],
            vec![d(10); 4],
            vec![d(100); 7],
            vec![],
        ] {
            let fair = fair_makespans(&[(1, tasks.clone())], 2)[0];
            assert_eq!(fair, crate::cluster::makespan_on_slots(&tasks, 2));
        }
    }

    #[test]
    fn tagged_trace_roundtrip() {
        let mut c = cfg();
        c.trace = TraceLevel::Full;
        let mut multi = MultiTenantEngine::new(
            c,
            vec![
                tenant("alpha", Technique::Prompt, 1),
                tenant("beta", Technique::Hash, 2),
            ],
        );
        let res = multi.run(&mut [const_source(200, 8, 0), const_source(200, 8, 2)], 3);
        let jsonl = res.tagged_trace_jsonl();
        let parsed = parse_tagged_jsonl(&jsonl).expect("round-trip");
        assert!(!parsed.is_empty());
        let names: std::collections::HashSet<&str> =
            parsed.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains("alpha") && names.contains("beta"));
        // Tagged totals match per-tenant event counts.
        let total: usize = res.tenants.iter().map(|t| t.trace.events().len()).sum();
        assert_eq!(parsed.len(), total);
    }
}
