//! The columnar data plane's acceptance gate: `EngineConfig::columnar` is a
//! hot-path-only optimization (struct-of-arrays seal, range-view blocks,
//! flat-array scatter/reduce, arena-sliced wire frames), so a columnar run
//! on every backend must stay **bit-identical** to the row-path serial
//! in-process oracle — per-batch plans and plan metrics, cost-model stage
//! times, f64 aggregates, window outputs — and the recorded virtual-time
//! spans must still tile each batch's processing exactly. A worker killed
//! mid-batch under the columnar plane must be detected, recomputed from the
//! replicated *row* input, and leave the outputs unchanged.
//!
//! These spawn OS processes for the distributed runs, so they live next to
//! the distributed smoke suite (CI runs both in the `distributed-smoke`
//! job) rather than the fast unit tier.

use prompt_core::partitioner::Technique;
use prompt_core::types::{Duration, Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;

/// Point the engine's worker-binary resolution at the freshly built
/// `prompt-worker` before any runtime launches.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PROMPT_WORKER_BIN", env!("CARGO_BIN_EXE_prompt-worker"));
    });
}

/// Skewed workload with a rotating hot key and non-trivial f64 values, so
/// per-key fold order is observable (f64 addition is non-associative) and
/// plans differ batch to batch.
fn source(rate: usize, keys: u64) -> impl TupleSource {
    move |iv: Interval, out: &mut Vec<Tuple>| {
        let step = iv.len().0 / (rate as u64 + 1);
        let hot = iv.start.0 / 1_000_000 % keys; // rotates every batch
        for i in 0..rate {
            let key = if i % 4 == 0 { hot } else { i as u64 % keys };
            out.push(Tuple {
                ts: Time(iv.start.0 + step * (i as u64 + 1)),
                key: Key(key),
                value: (i % 13) as f64 * 0.37 - 2.1,
            });
        }
    }
}

fn cfg(backend: Backend, depth: usize, columnar: bool) -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 3,
        cluster: Cluster::new(2, 4),
        backend,
        pipeline_depth: depth,
        columnar,
        trace: TraceLevel::Full,
        ..EngineConfig::default()
    }
}

fn run(
    backend: Backend,
    depth: usize,
    columnar: bool,
    faults: NetFaultPlan,
) -> (RunResult, TraceRecorder) {
    ensure_worker_bin();
    let mut engine = StreamingEngine::new(
        cfg(backend, depth, columnar),
        Technique::Prompt,
        11,
        Job::identity("sum", ReduceOp::Sum),
    )
    .with_window(WindowSpec::sliding(
        Duration::from_secs(3),
        Duration::from_secs(1),
    ))
    .with_net_faults(faults);
    let mut src = source(700, 19);
    engine.run_traced(&mut src, 8)
}

/// Full bit-identity: everything the paper's figures are built from.
fn assert_runs_identical(label: &str, serial: &RunResult, other: &RunResult) {
    assert_eq!(serial.batches.len(), other.batches.len(), "{label}");
    for (a, b) in serial.batches.iter().zip(&other.batches) {
        assert_eq!(a.seq, b.seq, "{label}");
        assert_eq!(a.n_tuples, b.n_tuples, "{label} batch {}", a.seq);
        assert_eq!(a.n_keys, b.n_keys, "{label} batch {}", a.seq);
        assert_eq!(a.map_tasks, b.map_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.reduce_tasks, b.reduce_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.map_stage, b.map_stage, "{label} batch {} map", a.seq);
        assert_eq!(
            a.reduce_stage, b.reduce_stage,
            "{label} batch {} reduce",
            a.seq
        );
        assert_eq!(
            a.processing, b.processing,
            "{label} batch {} processing",
            a.seq
        );
        assert_eq!(
            a.queue_delay, b.queue_delay,
            "{label} batch {} queue delay",
            a.seq
        );
        assert_eq!(a.latency, b.latency, "{label} batch {} latency", a.seq);
        assert_eq!(
            a.map_task_times, b.map_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.reduce_task_times, b.reduce_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.plan_metrics, b.plan_metrics,
            "{label} batch {} plan metrics",
            a.seq
        );
        assert!(a.w.to_bits() == b.w.to_bits(), "{label} batch {} W", a.seq);
    }
    assert_eq!(serial.windows.len(), other.windows.len(), "{label}");
    for (a, b) in serial.windows.iter().zip(&other.windows) {
        assert_eq!(a.last_batch_seq, b.last_batch_seq, "{label}");
        assert_eq!(a.aggregates.len(), b.aggregates.len(), "{label}");
        for (k, v) in &a.aggregates {
            assert_eq!(
                b.aggregates[k].to_bits(),
                v.to_bits(),
                "{label} window at batch {} key {k:?} must be bit-identical",
                a.last_batch_seq
            );
        }
    }
    assert_eq!(serial.backpressure, other.backpressure, "{label}");
}

/// Per batch, the PROCESSING_KINDS spans must tile `[start, start +
/// processing]` with no gaps regardless of which data plane executed —
/// spans are applied at commit.
fn assert_spans_tile(label: &str, res: &RunResult, rec: &TraceRecorder) {
    let events = rec.events();
    for b in &res.batches {
        let spans_of = |kind: StageKind| -> u64 {
            events
                .iter()
                .filter(|e| {
                    matches!(e, TraceEvent::Span { seq, kind: k, .. }
                        if *seq == b.seq && *k == kind)
                })
                .map(|e| e.span_us())
                .sum()
        };
        let processing: u64 = PROCESSING_KINDS.iter().map(|&k| spans_of(k)).sum();
        assert_eq!(
            processing, b.processing.0,
            "{label} batch {}: processing spans must tile processing",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::QueueWait),
            b.queue_delay.0,
            "{label} batch {}: queue span",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::Accumulate),
            Duration::from_secs(1).0,
            "{label} batch {}: accumulate span is the batch interval",
            b.seq
        );
    }
}

/// The core differential sweep: the columnar plane on all three backends
/// (and through the depth-2 pipelined distributed path) against the
/// row-path serial in-process oracle.
#[test]
fn columnar_is_bit_identical_to_rows_across_backends() {
    let (oracle, _) = run(Backend::InProcess, 1, false, NetFaultPlan::none());
    assert_eq!(oracle.batches.len(), 8);
    for (backend, depth) in [
        (Backend::InProcess, 1),
        (Backend::Threaded { threads: 4 }, 1),
        (
            Backend::Distributed {
                workers: 3,
                base_port: 0,
            },
            1,
        ),
        (
            Backend::Distributed {
                workers: 3,
                base_port: 0,
            },
            2,
        ),
    ] {
        let label = format!("columnar {backend:?} depth {depth}");
        let (res, rec) = run(backend, depth, true, NetFaultPlan::none());
        assert_runs_identical(&label, &oracle, &res);
        assert_spans_tile(&label, &res, &rec);
        assert_eq!(res.worker_losses, 0, "{label}");
        assert_eq!(res.recoveries, 0, "{label}");
        if matches!(backend, Backend::Distributed { .. }) {
            let net = res.net.expect("distributed runs report wire stats");
            assert_eq!(net.workers_lost, 0, "{label}");
        }
    }
}

/// Column-sliced frames are byte-identical to row frames, so a columnar
/// distributed run must put exactly the same bytes on the wire as a row
/// run of the same workload.
#[test]
fn columnar_wire_traffic_matches_rows_byte_for_byte() {
    let dist = Backend::Distributed {
        workers: 3,
        base_port: 0,
    };
    let (row, _) = run(dist, 1, false, NetFaultPlan::none());
    let (col, _) = run(dist, 1, true, NetFaultPlan::none());
    let (rn, cn) = (row.net.expect("wire stats"), col.net.expect("wire stats"));
    assert_eq!(rn.bytes_sent, cn.bytes_sent, "sent bytes must match");
    assert_eq!(rn.frames_sent, cn.frames_sent, "frame counts must match");
}

/// A worker killed mid-batch under the columnar plane: the loss surfaces
/// through the same wait path, the batch recomputes from the replicated
/// *row* input on the survivors, and outputs stay bit-identical.
#[test]
fn worker_kill_under_columnar_plane_recovers() {
    let (oracle, _) = run(Backend::InProcess, 1, false, NetFaultPlan::none());
    let dist = Backend::Distributed {
        workers: 3,
        base_port: 0,
    };
    for (label, depth, faults) in [
        // Killed before its Map tasks dispatch: the submit path aborts.
        ("kill-before", 1, NetFaultPlan::none().kill_before(2, 1)),
        // Killed after Map completes, mid-shuffle: the drain path aborts.
        (
            "kill-after-map",
            1,
            NetFaultPlan::none().kill_after_map(2, 1),
        ),
        // Same mid-shuffle kill while two columnar batches are in flight.
        (
            "kill-after-map-depth2",
            2,
            NetFaultPlan::none().kill_after_map(2, 1),
        ),
    ] {
        let (res, rec) = run(dist, depth, true, faults);
        assert_runs_identical(label, &oracle, &res);
        assert_spans_tile(label, &res, &rec);
        assert_eq!(res.worker_losses, 1, "{label}: exactly one loss");
        assert_eq!(res.recoveries, 1, "{label}: exactly one recovery");
        let net = res.net.expect("distributed runs report wire stats");
        assert_eq!(net.workers_lost, 1, "{label}");
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::WorkerLost { worker: 1, .. })),
            "{label}: loss must be traced"
        );
    }
}
