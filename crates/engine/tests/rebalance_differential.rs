//! The key-group rebalancer's acceptance gate: an [`RebalanceSpec::Auto`]
//! run's migration plans are a pure function of prior-commit load, so a
//! rebalanced run must be **bit-identical** — per-batch plans, stage
//! times, windows, span tiling, the migration log itself — to the same
//! workload forced through its recorded routing-table version sequence
//! ([`RebalanceSpec::Forced`]), on all three backends, including across a
//! worker kill that lands exactly on a migration batch. A stateful variant
//! exercises the group-scoped `GroupPush` state payloads over the wire.
//!
//! These spawn OS processes for the distributed runs, so they live next to
//! the distributed smoke suite (CI runs both in the `distributed-smoke`
//! job) rather than the fast unit tier.

use prompt_core::partitioner::Technique;
use prompt_core::types::{Duration, Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;
use prompt_engine::rebalance::RebalanceSpec;

/// Point the engine's worker-binary resolution at the freshly built
/// `prompt-worker` before any runtime launches.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PROMPT_WORKER_BIN", env!("CARGO_BIN_EXE_prompt-worker"));
    });
}

/// Hot-set churn: every interval puts 60% of its tuples on one hot key,
/// and the hot key itself moves every three batches — the workload the
/// grace-period auto-scaler cannot follow but the rebalancer reacts to
/// within a batch.
fn churn_source(rate: usize) -> impl TupleSource {
    move |iv: Interval, out: &mut Vec<Tuple>| {
        let step = iv.len().0 / (rate as u64 + 1);
        let seq = iv.start.0 / 1_000_000; // 1 s interval
        let hot_key = Key(100 + seq / 3);
        let hot = (rate as f64 * 0.6) as usize;
        for i in 0..rate {
            let key = if i < hot {
                hot_key
            } else {
                Key(1 + i as u64 % 30)
            };
            out.push(Tuple {
                ts: Time(iv.start.0 + step * (i as u64 + 1)),
                key,
                value: (i % 13) as f64 - 3.0,
            });
        }
    }
}

fn cfg(backend: Backend, rebalance: RebalanceSpec, trace: TraceLevel) -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 3,
        cluster: Cluster::new(2, 4),
        backend,
        trace,
        rebalance,
        ..EngineConfig::default()
    }
}

fn run(
    backend: Backend,
    rebalance: RebalanceSpec,
    trace: TraceLevel,
    faults: NetFaultPlan,
    stateful: bool,
) -> (RunResult, TraceRecorder) {
    ensure_worker_bin();
    let mut engine = StreamingEngine::new(
        cfg(backend, rebalance, trace),
        Technique::Hash,
        11,
        Job::identity("sum", ReduceOp::Sum),
    )
    .with_window(WindowSpec::sliding(
        Duration::from_secs(3),
        Duration::from_secs(1),
    ))
    .with_net_faults(faults);
    if stateful {
        engine = engine.with_stateful(StatefulOp::SessionCount);
    }
    let mut src = churn_source(600);
    engine.run_traced(&mut src, 9)
}

fn auto() -> RebalanceSpec {
    RebalanceSpec::Auto(RebalanceConfig {
        n_groups: 24,
        ..RebalanceConfig::default()
    })
}

fn forced(oracle: &RunResult) -> RebalanceSpec {
    RebalanceSpec::Forced {
        n_groups: 24,
        plans: oracle.migrations.clone(),
    }
}

/// Full bit-identity: everything the paper's figures are built from, plus
/// the migration log.
fn assert_runs_identical(label: &str, serial: &RunResult, other: &RunResult) {
    assert_eq!(serial.batches.len(), other.batches.len(), "{label}");
    for (a, b) in serial.batches.iter().zip(&other.batches) {
        assert_eq!(a.seq, b.seq, "{label}");
        assert_eq!(a.n_tuples, b.n_tuples, "{label} batch {}", a.seq);
        assert_eq!(a.n_keys, b.n_keys, "{label} batch {}", a.seq);
        assert_eq!(a.map_tasks, b.map_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.reduce_tasks, b.reduce_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.map_stage, b.map_stage, "{label} batch {} map", a.seq);
        assert_eq!(
            a.reduce_stage, b.reduce_stage,
            "{label} batch {} reduce",
            a.seq
        );
        assert_eq!(
            a.processing, b.processing,
            "{label} batch {} processing",
            a.seq
        );
        assert_eq!(
            a.queue_delay, b.queue_delay,
            "{label} batch {} queue delay",
            a.seq
        );
        assert_eq!(a.latency, b.latency, "{label} batch {} latency", a.seq);
        assert_eq!(
            a.map_task_times, b.map_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.reduce_task_times, b.reduce_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.plan_metrics, b.plan_metrics,
            "{label} batch {} plan metrics",
            a.seq
        );
        assert!(a.w.to_bits() == b.w.to_bits(), "{label} batch {} W", a.seq);
    }
    assert_eq!(serial.windows.len(), other.windows.len(), "{label}");
    for (a, b) in serial.windows.iter().zip(&other.windows) {
        assert_eq!(a.last_batch_seq, b.last_batch_seq, "{label}");
        assert_eq!(
            a.aggregates, b.aggregates,
            "{label} window at batch {} must be bit-identical",
            a.last_batch_seq
        );
    }
    assert_eq!(serial.stateful.len(), other.stateful.len(), "{label}");
    for (a, b) in serial.stateful.iter().zip(&other.stateful) {
        assert_eq!(a.aggregates, b.aggregates, "{label} stateful emission");
    }
    assert_eq!(serial.migrations, other.migrations, "{label} migration log");
    assert_eq!(serial.backpressure, other.backpressure, "{label}");
}

/// Per batch, the PROCESSING_KINDS spans must tile `[start, start +
/// processing]` with no gaps.
fn assert_spans_tile(label: &str, res: &RunResult, rec: &TraceRecorder) {
    let events = rec.events();
    for b in &res.batches {
        let spans_of = |kind: StageKind| -> u64 {
            events
                .iter()
                .filter(|e| {
                    matches!(e, TraceEvent::Span { seq, kind: k, .. }
                        if *seq == b.seq && *k == kind)
                })
                .map(|e| e.span_us())
                .sum()
        };
        let processing: u64 = PROCESSING_KINDS.iter().map(|&k| spans_of(k)).sum();
        assert_eq!(
            processing, b.processing.0,
            "{label} batch {}: processing spans must tile processing",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::QueueWait),
            b.queue_delay.0,
            "{label} batch {}: queue span",
            b.seq
        );
    }
}

/// The migration log must be mirrored in the trace: one `Rebalance` event
/// per applied plan, one `GroupMigrate` per move, counters matching.
fn assert_migrations_traced(label: &str, res: &RunResult, rec: &TraceRecorder) {
    let events = rec.events();
    assert_eq!(
        rec.counter(Counter::Rebalances),
        res.migrations.len() as u64,
        "{label}"
    );
    let total_moves: usize = res.migrations.iter().map(|(_, p)| p.moves.len()).sum();
    assert_eq!(
        rec.counter(Counter::GroupsMoved),
        total_moves as u64,
        "{label}"
    );
    for (seq, plan) in &res.migrations {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Rebalance { seq: s, moves, .. }
                if s == seq && *moves == plan.moves.len() as u64)),
            "{label}: migration at batch {seq} must be traced"
        );
        for mv in &plan.moves {
            assert!(
                events.iter().any(
                    |e| matches!(e, TraceEvent::GroupMigrate { seq: s, group, from, to, .. }
                        if s == seq && *group == mv.group && *from == mv.from && *to == mv.to)
                ),
                "{label}: move of group {} at batch {seq} must be traced",
                mv.group
            );
        }
    }
}

/// The core differential: the auto run migrates hot groups mid-run, and
/// replaying its recorded plan sequence through `RebalanceSpec::Forced` is
/// bit-identical on every backend — as is the auto run itself.
#[test]
fn auto_matches_forced_replay_on_all_backends() {
    let (oracle, orec) = run(
        Backend::InProcess,
        auto(),
        TraceLevel::Full,
        NetFaultPlan::none(),
        false,
    );
    assert_eq!(oracle.batches.len(), 9);
    assert!(
        !oracle.migrations.is_empty(),
        "hot-set churn must trip the rebalancer"
    );
    assert_migrations_traced("oracle", &oracle, &orec);

    for backend in [
        Backend::InProcess,
        Backend::Threaded { threads: 4 },
        Backend::Distributed {
            workers: 3,
            base_port: 0,
        },
    ] {
        let label = format!("{backend:?} auto");
        let (res, rec) = run(
            backend,
            auto(),
            TraceLevel::Full,
            NetFaultPlan::none(),
            false,
        );
        assert_runs_identical(&label, &oracle, &res);
        assert_spans_tile(&label, &res, &rec);
        assert_migrations_traced(&label, &res, &rec);

        let label = format!("{backend:?} forced replay");
        let (res, rec) = run(
            backend,
            forced(&oracle),
            TraceLevel::Full,
            NetFaultPlan::none(),
            false,
        );
        assert_runs_identical(&label, &oracle, &res);
        assert_spans_tile(&label, &res, &rec);
    }
}

/// Migration decisions may not depend on observability: `Off`, `Summary`
/// and `Full` auto runs emit the same plan sequence and numbers.
#[test]
fn migrations_are_trace_level_invariant() {
    let (oracle, _) = run(
        Backend::InProcess,
        auto(),
        TraceLevel::Full,
        NetFaultPlan::none(),
        false,
    );
    for trace in [TraceLevel::Off, TraceLevel::Summary] {
        let (res, _) = run(
            Backend::InProcess,
            auto(),
            trace,
            NetFaultPlan::none(),
            false,
        );
        assert_runs_identical(&format!("trace {trace:?}"), &oracle, &res);
    }
}

/// A worker killed exactly on a migration batch: the batch is recomputed
/// on the survivors under the *same* routing-table version and everything
/// stays bit-identical, on top of the `GroupPush` acks already fencing the
/// batch behind the ownership change.
#[test]
fn worker_kill_on_migration_batch_recovers() {
    let (oracle, _) = run(
        Backend::InProcess,
        auto(),
        TraceLevel::Full,
        NetFaultPlan::none(),
        false,
    );
    let migration_seq = oracle
        .migrations
        .first()
        .expect("hot-set churn must trip the rebalancer")
        .0;
    let dist = Backend::Distributed {
        workers: 3,
        base_port: 0,
    };
    for (label, faults) in [
        (
            "kill-before-migration-batch",
            NetFaultPlan::none().kill_before(migration_seq, 1),
        ),
        (
            "kill-after-map-migration-batch",
            NetFaultPlan::none().kill_after_map(migration_seq, 1),
        ),
    ] {
        let (res, rec) = run(dist, auto(), TraceLevel::Full, faults, false);
        assert_runs_identical(label, &oracle, &res);
        assert_spans_tile(label, &res, &rec);
        assert_eq!(res.worker_losses, 1, "{label}: exactly one loss");
        assert_eq!(res.recoveries, 1, "{label}: exactly one recovery");
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::WorkerLost { worker: 1, .. })),
            "{label}: loss must be traced"
        );
    }
}

/// The stateful variant: with the keyed state store active, migration
/// batches ship non-empty group-scoped state payloads over the wire
/// (`GroupPush`), and the run stays bit-identical to the in-process
/// oracle — including the stateful emissions computed from the store.
#[test]
fn stateful_migrations_ship_group_payloads() {
    let (oracle, orec) = run(
        Backend::InProcess,
        auto(),
        TraceLevel::Full,
        NetFaultPlan::none(),
        true,
    );
    assert!(
        !oracle.migrations.is_empty(),
        "hot-set churn must trip the rebalancer"
    );
    assert!(!oracle.stateful.is_empty(), "stateful emissions expected");
    // Migrations past warm-up carry real state: the moved group's keys
    // have in-window panes, so the encoded slice is non-trivial.
    let bytes: Vec<u64> = orec
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::GroupMigrate { bytes, .. } => Some(*bytes),
            _ => None,
        })
        .collect();
    assert!(!bytes.is_empty());
    assert!(
        bytes.iter().any(|&b| b > 0),
        "at least one migrated group must carry state: {bytes:?}"
    );
    for backend in [
        Backend::Threaded { threads: 4 },
        Backend::Distributed {
            workers: 3,
            base_port: 0,
        },
    ] {
        let label = format!("{backend:?} stateful auto");
        let (res, rec) = run(
            backend,
            auto(),
            TraceLevel::Full,
            NetFaultPlan::none(),
            true,
        );
        assert_runs_identical(&label, &oracle, &res);
        assert_migrations_traced(&label, &res, &rec);
    }
}
