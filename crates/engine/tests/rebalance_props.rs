//! Property tests for the key-group routing table and the auto
//! rebalancer.
//!
//! The routing-table invariants: the version advances by exactly one per
//! applied migration plan (so the version sequence doubles as the
//! migration count), every key-group has exactly one owner `< n_workers`
//! after any migration sequence, rejected plans leave the table untouched,
//! and replaying a move sequence against a fresh table reproduces it
//! exactly. The policy invariants mirror PR 8's hysteresis gate:
//! [`AutoRebalance`] never emits plans closer together than `min_dwell`,
//! every plan it emits applies cleanly to the table it was decided
//! against, and the whole decision sequence is a deterministic function of
//! the observations.

use prompt_engine::prelude::*;
use prompt_engine::rebalance::RebalanceSpec;
use proptest::prelude::*;

/// Deterministic xorshift64* stream: the tests derive move sequences and
/// load patterns from one generated `u64`, keeping the proptest strategies
/// to plain ranges while still exploring a large input space.
fn next(s: &mut u64) -> u64 {
    let mut x = *s;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *s = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Build one valid migration plan from the stream: 1–3 moves of distinct
/// groups, each to a worker other than its current owner. On a
/// single-worker table no legal move exists, so the plan comes back empty.
fn derive_plan(s: &mut u64, table: &RoutingTable) -> MigrationPlan {
    let n_groups = table.n_groups();
    let n_workers = table.n_workers();
    if n_workers < 2 {
        return MigrationPlan::default();
    }
    let n_moves = 1 + (next(s) % 3) as usize;
    let mut moves = Vec::new();
    let mut used = std::collections::BTreeSet::new();
    for _ in 0..n_moves {
        let g = (next(s) % n_groups as u64) as u32;
        if !used.insert(g) {
            continue;
        }
        let from = table.owner_of(g as usize);
        let to = (next(s) % n_workers as u64) as u32;
        let to = if to == from {
            (to + 1) % n_workers as u32
        } else {
            to
        };
        moves.push(GroupMove { group: g, from, to });
    }
    MigrationPlan { moves }
}

/// The routing-table property: version monotonicity (+1 per applied
/// plan), exactly-one-owner-in-range after any sequence, rejected plans
/// are no-ops, and replay reproduces the table bit-for-bit.
fn check_table_invariants(
    seed: u64,
    n_groups: usize,
    n_workers: usize,
    n_plans: usize,
) -> Result<(), TestCaseError> {
    let mut s = seed | 1;
    let mut table = RoutingTable::new(n_groups, n_workers);
    prop_assert_eq!(table.version(), 0);
    let mut applied: Vec<MigrationPlan> = Vec::new();
    for i in 0..n_plans {
        let plan = derive_plan(&mut s, &table);
        if plan.is_empty() {
            // Empty plans are rejected by the table, not versioned.
            prop_assert!(table.apply(&plan).is_err());
            continue;
        }
        let before = table.version();
        table.apply(&plan).expect("derived plans are valid");
        prop_assert_eq!(table.version(), before + 1, "version bumps by one");
        prop_assert_eq!(table.owners().len(), n_groups, "one owner per group");
        for (g, &o) in table.owners().iter().enumerate() {
            prop_assert!(
                (o as usize) < n_workers,
                "plan {i}: group {g} owned by out-of-range worker {o}"
            );
        }
        applied.push(plan);
    }
    prop_assert_eq!(table.version(), applied.len() as u64);

    // A plan recorded against a different history (stale `from`) is
    // rejected atomically: same owners, same version.
    if n_workers >= 2 {
        let g = (next(&mut s) % n_groups as u64) as u32;
        let real = table.owner_of(g as usize);
        let stale = MigrationPlan {
            moves: vec![GroupMove {
                group: g,
                from: (real + 1) % n_workers as u32,
                to: real,
            }],
        };
        let snapshot = table.clone();
        prop_assert!(table.apply(&stale).is_err(), "stale from must be rejected");
        prop_assert_eq!(&table, &snapshot, "rejected plan must be a no-op");
    }

    // Replay determinism: the recorded sequence applied to a fresh table
    // reproduces the final table exactly.
    let mut replay = RoutingTable::new(n_groups, n_workers);
    for plan in &applied {
        replay.apply(plan).expect("recorded plans replay cleanly");
    }
    prop_assert_eq!(&replay, &table, "replay must reproduce the table");
    Ok(())
}

/// Drive an [`AutoRebalance`] policy over a synthetic load stream (one
/// hot group per batch, drawn from the stream) and return the non-empty
/// decisions it made, applying each to `table` as the driver would.
fn drive_auto(
    policy: &mut AutoRebalance,
    table: &mut RoutingTable,
    seed: u64,
    n_batches: u64,
) -> Vec<(u64, MigrationPlan)> {
    let mut s = seed | 1;
    let n_groups = table.n_groups();
    let mut log = Vec::new();
    for seq in 0..n_batches {
        let plan = policy.decide(seq);
        if !plan.is_empty() {
            table
                .apply(&plan)
                .expect("decided plans must apply cleanly");
            log.push((seq, plan));
        }
        // Synthetic commit: pick a hot worker and overload the first few
        // groups it currently owns, so the skew is always *fixable* by
        // moving a group (a single dominant group would just shift the
        // hot spot, which the planner rightly refuses). Busy time follows
        // ownership — the same decomposition the driver feeds from the
        // cost model's task times.
        let hot_worker = (next(&mut s) % table.n_workers() as u64) as u32;
        let mut hot_left = 3;
        let group_tuples: Vec<u64> = (0..n_groups)
            .map(|g| {
                if table.owner_of(g) == hot_worker && hot_left > 0 {
                    hot_left -= 1;
                    1_000
                } else {
                    10
                }
            })
            .collect();
        let mut busy = vec![0u64; table.n_workers()];
        for (g, &t) in group_tuples.iter().enumerate() {
            busy[table.owner_of(g) as usize] += t * 10;
        }
        policy.observe(&RebalanceObservation {
            seq,
            version: table.version(),
            worker_busy_us: &busy,
            group_tuples: &group_tuples,
            owners: table.owners(),
        });
    }
    log
}

/// The policy property: hysteresis (non-empty decisions ≥ `min_dwell`
/// apart), clean application of every emitted plan, and determinism of
/// the full decision sequence under replay.
fn check_auto_policy(seed: u64, min_dwell: u64, n_batches: u64) -> Result<(), TestCaseError> {
    let cfg = RebalanceConfig {
        n_groups: 16,
        min_dwell,
        ..RebalanceConfig::default()
    };
    let mut policy = AutoRebalance::new(cfg);
    let mut table = RoutingTable::new(16, 4);
    let log = drive_auto(&mut policy, &mut table, seed, n_batches);
    for w in log.windows(2) {
        prop_assert!(
            w[1].0 - w[0].0 >= min_dwell,
            "plans at {} and {} violate min_dwell {}",
            w[0].0,
            w[1].0,
            min_dwell
        );
    }
    prop_assert_eq!(table.version(), log.len() as u64);

    let mut replay_policy = AutoRebalance::new(cfg);
    let mut replay_table = RoutingTable::new(16, 4);
    let replay_log = drive_auto(&mut replay_policy, &mut replay_table, seed, n_batches);
    prop_assert_eq!(&log, &replay_log, "decision sequence must be deterministic");
    prop_assert_eq!(&table, &replay_table);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_invariants_hold_for_any_migration_sequence(
        seed in any::<u64>(),
        n_groups in 1usize..48,
        n_workers in 1usize..9,
        n_plans in 0usize..24,
    ) {
        check_table_invariants(seed, n_groups, n_workers, n_plans)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn auto_policy_is_hysteretic_and_deterministic(
        seed in any::<u64>(),
        min_dwell in 1u64..6,
        n_batches in 4u64..32,
    ) {
        check_auto_policy(seed, min_dwell, n_batches)?;
    }
}

/// A `Forced` spec built from a recorded log validates and replays — the
/// spec-level mirror of the differential test's oracle construction.
#[test]
fn forced_spec_from_a_recorded_log_validates() {
    let mut policy = AutoRebalance::new(RebalanceConfig {
        n_groups: 16,
        ..RebalanceConfig::default()
    });
    let mut table = RoutingTable::new(16, 4);
    let log = drive_auto(&mut policy, &mut table, 0x5EED, 24);
    assert!(!log.is_empty(), "the synthetic churn must trip the policy");
    let spec = RebalanceSpec::Forced {
        n_groups: 16,
        plans: log,
    };
    spec.validate()
        .expect("recorded logs are valid forced specs");
}

/// Replay of the checked-in regression seed (see
/// `rebalance_props.proptest-regressions`): single-worker tables (nothing
/// can move — derive_plan must still terminate and version stays 0-free
/// of bad moves) alongside the smallest dwell on a long batch run.
#[test]
fn pinned_regression_single_worker_and_min_dwell_1() {
    check_table_invariants(0xDEAD_BEEF_0BAD_F00D, 1, 1, 8).unwrap();
    check_auto_policy(0xDEAD_BEEF_0BAD_F00D, 1, 31).unwrap();
}
