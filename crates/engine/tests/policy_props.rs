//! Property tests for the adaptive partitioner-selection policy.
//!
//! The hysteresis invariant: however the workload flaps between uniform and
//! skewed batches, [`AdaptivePolicy`] never switches techniques more than
//! once per [`AdaptiveConfig::min_dwell`] window — consecutive switch
//! sequence numbers are always at least `min_dwell` apart — and its
//! decision log is a deterministic function of the observations. At the
//! engine level, the per-batch technique choices are invariant to the
//! trace level (`Off`/`Summary`/`Full` runs decide identically).

use prompt_core::batch::MicroBatch;
use prompt_core::metrics::PlanMetrics;
use prompt_core::partitioner::Technique;
use prompt_core::types::{Duration, Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;
use proptest::prelude::*;

/// A batch of `spec` = per-key tuple counts, round-robin interleaved.
fn batch(spec: &[(u64, usize)]) -> MicroBatch {
    let total: usize = spec.iter().map(|&(_, c)| c).sum();
    let iv = Interval::new(Time::ZERO, Time::from_secs(1));
    let step = iv.len().0 / (total.max(1) as u64 + 1);
    let mut tuples = Vec::new();
    let mut ts = 0;
    let mut remaining: Vec<(u64, usize)> = spec.to_vec();
    while tuples.len() < total {
        for r in remaining.iter_mut() {
            if r.1 > 0 {
                r.1 -= 1;
                ts += step;
                tuples.push(Tuple::keyed(Time::from_micros(ts), Key(r.0)));
            }
        }
    }
    MicroBatch::new(tuples, iv)
}

/// Drive a policy through `n` batches whose skewness follows the bits of
/// `pattern` (bit set → one hot key holds half the mass), returning the
/// decision log.
fn drive(policy: &mut AdaptivePolicy, n: u64, pattern: u64, p: usize) -> Vec<PolicyDecision> {
    let mut log = Vec::new();
    for seq in 0..n {
        let d = policy.decide(seq);
        let spec: Vec<(u64, usize)> = if pattern >> (seq % 64) & 1 == 1 {
            let mut s = vec![(0u64, 300)];
            s.extend((1..31u64).map(|k| (k, 10)));
            s
        } else {
            (0..200u64).map(|k| (k, 3)).collect()
        };
        let b = batch(&spec);
        let plan = Technique::Hash.build(7).partition(&b, p);
        policy.observe(&BatchObservation {
            seq,
            technique: d.technique,
            n_tuples: b.len(),
            n_keys: b.distinct_keys(),
            map_tasks: p,
            metrics: PlanMetrics::of(&plan),
            plan: &plan,
        });
        log.push(d);
    }
    log
}

/// The hysteresis property itself, shared by the generated cases and the
/// pinned regression replay: switch gaps ≥ `min_dwell`, log deterministic.
fn check_hysteresis(
    min_dwell: u64,
    margin: f64,
    pattern: u64,
    n: u64,
    initial: u8,
) -> Result<(), TestCaseError> {
    let cfg = AdaptiveConfig {
        min_dwell,
        margin,
        ..AdaptiveConfig::default()
    };
    let initial = [Technique::Hash, Technique::Prompt, Technique::Shuffle][initial as usize % 3];
    let mut policy = AdaptivePolicy::new(cfg.clone(), initial, 7);
    let log = drive(&mut policy, n, pattern, 8);
    let switches: Vec<u64> = log.iter().filter(|d| d.switched).map(|d| d.seq).collect();
    for w in switches.windows(2) {
        prop_assert!(
            w[1] - w[0] >= min_dwell,
            "switches at {:?} violate min_dwell {}",
            switches,
            min_dwell
        );
    }
    for d in &log {
        prop_assert_eq!(d.switched, d.technique != d.prev, "switch flag coherence");
    }
    let mut replay = AdaptivePolicy::new(cfg, initial, 7);
    prop_assert_eq!(
        &log,
        &drive(&mut replay, n, pattern, 8),
        "decision log must be deterministic"
    );
    Ok(())
}

/// One engine run over a pattern-driven drifting source.
fn engine_run(trace: TraceLevel, pattern: u64, seed: u64) -> RunResult {
    let cfg = EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 3,
        cluster: Cluster::new(2, 4),
        trace,
        policy: PolicySpec::Adaptive(AdaptiveConfig::default()),
        ..EngineConfig::default()
    };
    let mut engine = StreamingEngine::new(
        cfg,
        Technique::Hash,
        seed,
        Job::identity("count", ReduceOp::Count),
    );
    let mut src = move |iv: Interval, out: &mut Vec<Tuple>| {
        let b = iv.start.0 / 1_000_000;
        let skewed = pattern >> (b % 64) & 1 == 1;
        let step = iv.len().0 / 201;
        for i in 0..200usize {
            let key = if skewed {
                if i % 2 == 0 {
                    0
                } else {
                    1 + (i as u64 % 20)
                }
            } else {
                i as u64
            };
            out.push(Tuple::keyed(
                Time(iv.start.0 + step * (i as u64 + 1)),
                Key(key),
            ));
        }
    };
    let (res, _) = engine.run_traced(&mut src, 6);
    res
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hysteresis_never_switches_within_a_dwell_window(
        min_dwell in 1u64..6,
        margin in 0.0f64..0.4,
        pattern in any::<u64>(),
        n in 8u64..28,
        initial in 0u8..3,
    ) {
        check_hysteresis(min_dwell, margin, pattern, n, initial)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn engine_decisions_are_trace_level_invariant(
        pattern in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let full = engine_run(TraceLevel::Full, pattern, seed);
        for trace in [TraceLevel::Off, TraceLevel::Summary] {
            let other = engine_run(trace, pattern, seed);
            let seq_of = |r: &RunResult| -> Vec<Option<Technique>> {
                r.batches.iter().map(|b| b.technique).collect()
            };
            prop_assert_eq!(seq_of(&full), seq_of(&other), "trace {:?}", trace);
            prop_assert_eq!(&full.policy_decisions, &other.policy_decisions);
        }
    }
}

/// Replay of the checked-in regression seed (see
/// `policy_props.proptest-regressions`): the flappiest configuration —
/// zero margin, an alternating uniform/skewed pattern, and a dwell of 3 —
/// which without hysteresis would switch every batch.
#[test]
fn pinned_regression_alternating_pattern_dwell_3() {
    check_hysteresis(3, 0.0, 0xAAAA_AAAA_AAAA_AAAA, 24, 0).unwrap();
}
