//! Property-based tests of the v2 wire codec's data plane: the
//! column-slice Map-task encoder must emit **byte-identical** frames to the
//! row-path `Message::MapTask` encoding for every partitioning of every
//! arrival stream — same bytes on the wire, same v1-baseline accounting,
//! and a decode that round-trips to the row message. This is what lets the
//! distributed driver swap the columnar plane in without the workers (or
//! any capture of the traffic) being able to tell.

use prompt_core::batch::MicroBatch;
use prompt_core::columnar::ColumnarPlan;
use prompt_core::partitioner::Technique;
use prompt_core::types::{Interval, Key, Time, Tuple};
use prompt_engine::job::{JobSpec, MapSpec, ReduceOp};
use prompt_engine::net::wire::{encode_map_task_columnar, Message};
use proptest::prelude::*;

/// NaN-free f64 payloads with signed zeros, subnormals and extreme
/// magnitudes kept common (the codec carries raw bits, so these are the
/// cases where a sloppy conversion would differ).
fn value_strategy() -> impl Strategy<Value = f64> {
    (0u8..12, -1e12f64..1e12f64).prop_map(|(sel, v)| match sel {
        6 => 0.0,
        7 => -0.0,
        8 => f64::MIN_POSITIVE,
        9 => -f64::MIN_POSITIVE / 2.0,
        10 => 1.7e308,
        11 => 5e-324,
        _ => v,
    })
}

/// An arrival stream: (key, inter-arrival µs, value) triples.
fn stream_strategy() -> impl Strategy<Value = Vec<(u64, u64, f64)>> {
    proptest::collection::vec((0u64..30, 1u64..3_000, value_strategy()), 1..400)
}

fn build_batch(stream: &[(u64, u64, f64)]) -> MicroBatch {
    let mut ts = 0u64;
    let tuples: Vec<Tuple> = stream
        .iter()
        .map(|&(key, gap, value)| {
            ts += gap;
            Tuple {
                ts: Time::from_micros(ts),
                key: Key(key),
                value,
            }
        })
        .collect();
    MicroBatch::new(tuples, Interval::new(Time::ZERO, Time::from_micros(ts + 1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every block of every plan, the columnar encoder's frame equals
    /// the row encoder's frame byte for byte, reports the same v1-baseline
    /// payload size, and decodes back to the row message.
    #[test]
    fn columnar_frames_are_byte_identical_to_row_frames(
        stream in stream_strategy(),
        p in 1usize..6,
        seq in 0u64..1_000_000,
        epoch in 0u32..64,
    ) {
        let batch = build_batch(&stream);
        let spec = JobSpec { map: MapSpec::Identity, reduce: ReduceOp::Sum };
        let plan = Technique::Prompt.build(7).partition(&batch, p);
        let cols = ColumnarPlan::from_row_plan(&plan);
        prop_assert_eq!(cols.blocks.len(), plan.blocks.len());
        for (block_id, (rb, cb)) in plan.blocks.iter().zip(&cols.blocks).enumerate() {
            let msg = Message::MapTask {
                seq,
                epoch,
                block_id: block_id as u32,
                job: spec,
                block: rb.clone(),
            };
            let want = msg.encode();
            let (frame, v1) = encode_map_task_columnar(
                seq,
                epoch,
                block_id as u32,
                &spec,
                &cols.arena,
                cb,
            );
            prop_assert_eq!(&frame, &want, "block {} frame bytes", block_id);
            prop_assert_eq!(v1, msg.v1_payload_len(), "block {} v1 size", block_id);
            let decoded = Message::decode(&frame).expect("well-formed frame");
            prop_assert_eq!(decoded, msg, "block {} decode", block_id);
        }
    }

    /// The same byte-identity holds for Prompt's *native* columnar plan
    /// (sealed straight into columns, never materialized as rows): its
    /// frames match the frames of its own row rendering.
    #[test]
    fn native_columnar_plan_encodes_identically(
        stream in stream_strategy(),
        p in 1usize..6,
    ) {
        let batch = build_batch(&stream);
        let spec = JobSpec { map: MapSpec::Identity, reduce: ReduceOp::Count };
        let (cols, _) = Technique::Prompt
            .build(7)
            .partition_columnar(&batch, p)
            .expect("Prompt has a columnar path");
        let rows = cols.to_row_plan();
        for (block_id, (rb, cb)) in rows.blocks.iter().zip(&cols.blocks).enumerate() {
            let msg = Message::MapTask {
                seq: 3,
                epoch: 1,
                block_id: block_id as u32,
                job: spec,
                block: rb.clone(),
            };
            let (frame, v1) = encode_map_task_columnar(3, 1, block_id as u32, &spec, &cols.arena, cb);
            prop_assert_eq!(&frame, &msg.encode(), "block {}", block_id);
            prop_assert_eq!(v1, msg.v1_payload_len(), "block {}", block_id);
        }
    }
}
