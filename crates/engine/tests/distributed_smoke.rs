//! The distributed acceptance gate: real `prompt-worker` processes over
//! loopback TCP must be **bit-identical** to the serial in-process engine —
//! per-batch plans, stage times, aggregates and window outputs — and a
//! worker killed mid-run must be detected, recomputed from the replicated
//! store, and leave the outputs unchanged.
//!
//! These spawn OS processes, so they live in their own test binary (CI runs
//! it as the `distributed-smoke` job) rather than the fast unit tier.

use prompt_core::partitioner::Technique;
use prompt_core::types::{Duration, Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;

/// Point the engine's worker-binary resolution at the freshly built
/// `prompt-worker` before any runtime launches. Cargo guarantees the binary
/// exists when this test binary runs.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PROMPT_WORKER_BIN", env!("CARGO_BIN_EXE_prompt-worker"));
    });
}

/// Skewed workload: key 0 takes ~40% of tuples, the rest spread over a
/// round-robin tail with varying values.
fn skewed_source(rate: usize, keys: u64) -> impl TupleSource {
    move |iv: Interval, out: &mut Vec<Tuple>| {
        let step = iv.len().0 / (rate as u64 + 1);
        for i in 0..rate {
            let key = if i % 5 < 2 {
                0
            } else {
                1 + (i as u64 % (keys - 1))
            };
            out.push(Tuple {
                ts: Time(iv.start.0 + step * (i as u64 + 1)),
                key: Key(key),
                value: (i % 17) as f64 - 4.5,
            });
        }
    }
}

/// Uniform workload with a drifting key set, stressing re-registration of
/// clusters across batches.
fn drifting_source(rate: usize, keys: u64) -> impl TupleSource {
    move |iv: Interval, out: &mut Vec<Tuple>| {
        let step = iv.len().0 / (rate as u64 + 1);
        let shift = iv.start.0 / 1_000_000; // one new key band per batch
        for i in 0..rate {
            out.push(Tuple {
                ts: Time(iv.start.0 + step * (i as u64 + 1)),
                key: Key((i as u64 + shift * 3) % keys),
                value: 1.0 + (i % 7) as f64,
            });
        }
    }
}

fn cfg_with(backend: Backend) -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 3,
        cluster: Cluster::new(2, 4),
        backend,
        ..EngineConfig::default()
    }
}

/// Assert two runs are bit-identical in everything the paper's figures are
/// built from: per-batch sizes, plans, stage times, latencies and windows.
fn assert_runs_identical(serial: &RunResult, dist: &RunResult) {
    assert_eq!(serial.batches.len(), dist.batches.len());
    for (a, b) in serial.batches.iter().zip(&dist.batches) {
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.n_tuples, b.n_tuples, "batch {}", a.seq);
        assert_eq!(a.n_keys, b.n_keys, "batch {}", a.seq);
        assert_eq!(a.map_tasks, b.map_tasks, "batch {}", a.seq);
        assert_eq!(a.reduce_tasks, b.reduce_tasks, "batch {}", a.seq);
        assert_eq!(a.map_stage, b.map_stage, "batch {} map stage", a.seq);
        assert_eq!(
            a.reduce_stage, b.reduce_stage,
            "batch {} reduce stage",
            a.seq
        );
        assert_eq!(a.processing, b.processing, "batch {} processing", a.seq);
        assert_eq!(a.queue_delay, b.queue_delay, "batch {} queue delay", a.seq);
        assert_eq!(a.latency, b.latency, "batch {} latency", a.seq);
        assert_eq!(a.map_task_times, b.map_task_times, "batch {}", a.seq);
        assert_eq!(a.reduce_task_times, b.reduce_task_times, "batch {}", a.seq);
        assert_eq!(
            a.plan_metrics, b.plan_metrics,
            "batch {} plan metrics",
            a.seq
        );
        assert!(a.w.to_bits() == b.w.to_bits(), "batch {} W", a.seq);
    }
    assert_eq!(serial.windows.len(), dist.windows.len());
    for (a, b) in serial.windows.iter().zip(&dist.windows) {
        assert_eq!(a.last_batch_seq, b.last_batch_seq);
        assert_eq!(
            a.aggregates, b.aggregates,
            "window at batch {} must be bit-identical",
            a.last_batch_seq
        );
    }
}

fn run_pair(
    technique: Technique,
    job: Job,
    source_of: impl Fn() -> Box<dyn TupleSource>,
    workers: usize,
    n_batches: usize,
) -> (RunResult, RunResult) {
    ensure_worker_bin();
    let window = WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1));
    let mut serial = StreamingEngine::new(cfg_with(Backend::InProcess), technique, 9, job.clone())
        .with_window(window);
    let serial_res = serial.run(source_of().as_mut(), n_batches);

    let mut dist = StreamingEngine::new(
        cfg_with(Backend::Distributed {
            workers,
            base_port: 0,
        }),
        technique,
        9,
        job,
    )
    .with_window(window);
    let dist_res = dist.run(source_of().as_mut(), n_batches);
    (serial_res, dist_res)
}

#[test]
fn skewed_sum_two_processes_bit_identical() {
    let (serial, dist) = run_pair(
        Technique::Prompt,
        Job::identity("sum", ReduceOp::Sum),
        || Box::new(skewed_source(900, 23)),
        2,
        6,
    );
    assert_runs_identical(&serial, &dist);
    assert_eq!(dist.worker_losses, 0);
    assert_eq!(dist.recoveries, 0);
    let net = dist.net.expect("distributed runs report wire stats");
    assert_eq!(net.workers_lost, 0);
    assert!(net.frames_sent > 0 && net.bytes_sent > 0);
    assert!(serial.net.is_none(), "in-process runs have no wire stats");

    // The pooled data plane: across 6 batches the two workers dial each
    // other at most once per direction and reuse those connections for
    // every later fetch, and the v2 varint encoding strictly beats the v1
    // fixed-width layout on fetch bytes.
    assert!(
        net.shuffle_conns_dialed <= 2,
        "2 workers need at most one dial per direction, got {}",
        net.shuffle_conns_dialed
    );
    assert!(
        net.shuffle_conns_reused > net.shuffle_conns_dialed,
        "pool hits ({}) must dominate dials ({})",
        net.shuffle_conns_reused,
        net.shuffle_conns_dialed
    );
    assert!(net.shuffle_bytes_wire > 0, "remote fetches happened");
    assert!(
        net.shuffle_bytes_wire < net.shuffle_bytes_raw,
        "v2 fetch encoding ({}) must beat v1 layout ({})",
        net.shuffle_bytes_wire,
        net.shuffle_bytes_raw
    );
    assert!(
        net.bytes_sent < net.bytes_sent_raw,
        "v2 control encoding ({}) must beat v1 layout ({})",
        net.bytes_sent,
        net.bytes_sent_raw
    );
}

#[test]
fn drifting_count_three_processes_bit_identical() {
    let (serial, dist) = run_pair(
        Technique::Hash,
        Job::identity("count", ReduceOp::Count),
        || Box::new(drifting_source(700, 40)),
        3,
        6,
    );
    assert_runs_identical(&serial, &dist);
    assert_eq!(dist.worker_losses, 0);
}

fn ckpt_dir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("prompt-smoke-{tag}-{}-{nanos}", std::process::id()))
}

/// The state-recovery acceptance gate: a worker killed mid-window *and* a
/// scheduled loss of the whole keyed state store, with checkpointing on,
/// must restore from the checkpoint, recompute only the post-watermark
/// suffix (fewer batches than the no-checkpoint rebuild), and leave every
/// window bit-identical to the serial engine.
#[test]
fn checkpointed_state_survives_worker_kill_and_store_loss() {
    ensure_worker_bin();
    let job = Job::identity("sum", ReduceOp::Sum);
    // The window spans the whole run so the no-checkpoint variant retains
    // every batch and recompute-from-scratch stays feasible.
    let window = WindowSpec::sliding(Duration::from_secs(8), Duration::from_secs(1));
    let n_batches = 8;

    let mut serial = StreamingEngine::new(
        cfg_with(Backend::InProcess),
        Technique::Prompt,
        5,
        job.clone(),
    )
    .with_window(window)
    .with_stateful(StatefulOp::SessionCount);
    let serial_res = serial.run(&mut skewed_source(600, 15), n_batches);

    let run_dist = |checkpoint: Option<CheckpointConfig>| {
        let mut cfg = cfg_with(Backend::Distributed {
            workers: 3,
            base_port: 0,
        });
        cfg.trace = TraceLevel::Full;
        cfg.checkpoint = checkpoint;
        let mut dist = StreamingEngine::new(cfg, Technique::Prompt, 5, job.clone())
            .with_window(window)
            .with_stateful(StatefulOp::SessionCount)
            .with_fault_tolerance(3, FaultPlan::none().lose_store_at(5))
            .with_net_faults(NetFaultPlan::none().kill_before(2, 1));
        dist.run_traced(&mut skewed_source(600, 15), n_batches)
    };

    let dir = ckpt_dir("recovery");
    let (ckpt_res, rec) = run_dist(Some(CheckpointConfig::new(&dir).interval(1)));
    let (scratch_res, _) = run_dist(None);

    // The worker kill really happened and was recovered from...
    assert_eq!(ckpt_res.worker_losses, 1, "worker 1 dies at batch 2");
    assert_eq!(ckpt_res.recoveries, 1);

    // ...the store loss restored from the checkpoint, recomputing only the
    // post-watermark suffix (nothing: the watermark covers batch 4)...
    let ckpt_stats = ckpt_res.state.expect("state layer on");
    let scratch_stats = scratch_res.state.expect("state layer on");
    assert_eq!(ckpt_stats.restores, 1);
    assert_eq!(scratch_stats.restores, 1);
    assert_eq!(
        scratch_stats.recomputed_batches, 5,
        "no checkpoint: rebuild all"
    );
    assert!(
        ckpt_stats.recomputed_batches < scratch_stats.recomputed_batches,
        "checkpoint must shrink the recompute suffix: {} vs {}",
        ckpt_stats.recomputed_batches,
        scratch_stats.recomputed_batches
    );
    assert_eq!(rec.counter(Counter::StateRestores), 1);
    assert!(
        rec.counter(Counter::Checkpoints) >= 7,
        "one commit per batch"
    );
    let events = rec.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::StateRestore { seq: 5, .. })),
        "the restore decision must be visible in the trace"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Checkpoint { .. })),
        "checkpoint commits must be visible in the trace"
    );

    // ...and the retained inputs were truncated at the watermark while the
    // no-checkpoint run had to keep everything.
    assert!(
        ckpt_stats.max_retained_batches < scratch_stats.max_retained_batches,
        "watermark truncation must bound retention: {} vs {}",
        ckpt_stats.max_retained_batches,
        scratch_stats.max_retained_batches
    );

    // Both runs emit windows and stateful results bit-identical to serial.
    for (name, res) in [("checkpoint", &ckpt_res), ("scratch", &scratch_res)] {
        assert_eq!(serial_res.windows.len(), res.windows.len(), "{name}");
        for (a, b) in serial_res.windows.iter().zip(&res.windows) {
            assert_eq!(
                a.aggregates, b.aggregates,
                "{name} window {}",
                a.last_batch_seq
            );
        }
        assert_eq!(serial_res.stateful.len(), res.stateful.len(), "{name}");
        for (a, b) in serial_res.stateful.iter().zip(&res.stateful) {
            assert_eq!(
                a.aggregates, b.aggregates,
                "{name} stateful {}",
                a.last_batch_seq
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Elasticity-driven migration over the wire: when the auto-scaler changes
/// the reduce task count mid-run, the re-sharded state is pushed to the
/// worker fleet (`StatePush`/`StateAck`) and the answers stay bit-identical
/// to the serial engine without checkpointing.
#[test]
fn scale_migration_ships_state_over_the_wire() {
    ensure_worker_bin();
    let job = Job::identity("count", ReduceOp::Count);
    let window = WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1));
    let source = || {
        let mut rate = 2000usize;
        move |iv: Interval, out: &mut Vec<Tuple>| {
            rate += 400;
            let step = iv.len().0 / (rate as u64 + 1);
            for i in 0..rate {
                out.push(Tuple::keyed(
                    Time(iv.start.0 + step * (i as u64 + 1)),
                    Key(i as u64 % 64),
                ));
            }
        }
    };
    let base_cfg = |backend: Backend| {
        let mut cfg = cfg_with(backend);
        cfg.map_tasks = 2;
        cfg.reduce_tasks = 2;
        cfg.cluster = Cluster::new(4, 4);
        cfg.cost = CostModel {
            map_per_tuple: Duration::from_micros(150),
            reduce_per_tuple: Duration::from_micros(150),
            ..CostModel::default()
        };
        cfg.elasticity = Some(ScalerConfig {
            d: 2,
            ..Default::default()
        });
        cfg
    };

    let mut serial = StreamingEngine::new(
        base_cfg(Backend::InProcess),
        Technique::Prompt,
        9,
        job.clone(),
    )
    .with_window(window);
    let serial_res = serial.run(&mut source(), 20);
    assert!(
        serial_res.scale_events.iter().any(|(_, a)| a.out),
        "load ramp must trigger scale-out"
    );

    let dir = ckpt_dir("migrate");
    let mut cfg = base_cfg(Backend::Distributed {
        workers: 2,
        base_port: 0,
    });
    cfg.trace = TraceLevel::Full;
    cfg.checkpoint = Some(CheckpointConfig::new(&dir).interval(2));
    let mut dist = StreamingEngine::new(cfg, Technique::Prompt, 9, job).with_window(window);
    let (dist_res, rec) = dist.run_traced(&mut source(), 20);

    assert_eq!(serial_res.scale_events, dist_res.scale_events);
    let stats = dist_res.state.expect("state layer on");
    assert!(stats.migrations >= 1, "scale-out must migrate shards");
    assert!(stats.migrated_keys > 0);
    assert_eq!(rec.counter(Counter::StateMigrations), stats.migrations);
    assert!(
        rec.events()
            .iter()
            .any(|e| matches!(e, TraceEvent::StateMigrate { .. })),
        "the migration must be visible in the trace"
    );
    assert_eq!(serial_res.windows.len(), dist_res.windows.len());
    for (a, b) in serial_res.windows.iter().zip(&dist_res.windows) {
        assert_eq!(
            a.aggregates, b.aggregates,
            "window at batch {} must survive migration bit-identically",
            a.last_batch_seq
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_worker_recovers_and_outputs_match_serial() {
    ensure_worker_bin();
    let job = Job::identity("sum", ReduceOp::Sum);
    let window = WindowSpec::tumbling(Duration::from_secs(2));
    let n_batches = 6;

    let mut serial = StreamingEngine::new(
        cfg_with(Backend::InProcess),
        Technique::Prompt,
        5,
        job.clone(),
    )
    .with_window(window);
    let serial_res = serial.run(&mut skewed_source(600, 15), n_batches);

    let mut cfg = cfg_with(Backend::Distributed {
        workers: 3,
        base_port: 0,
    });
    cfg.trace = TraceLevel::Full;
    let mut dist = StreamingEngine::new(cfg, Technique::Prompt, 5, job)
        .with_window(window)
        .with_net_faults(NetFaultPlan::none().kill_before(2, 1));
    let (dist_res, rec) = dist.run_traced(&mut skewed_source(600, 15), n_batches);

    // The kill really happened and was recovered from...
    assert_eq!(dist_res.worker_losses, 1, "worker 1 dies at batch 2");
    assert_eq!(dist_res.recoveries, 1);
    assert_eq!(dist_res.net.expect("wire stats").workers_lost, 1);
    assert_eq!(rec.counter(Counter::WorkersLost), 1);
    assert_eq!(rec.counter(Counter::Recoveries), 1);
    let events = rec.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::WorkerLost { seq: 2, worker: 1 })),
        "worker-loss decision must be visible in the trace"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TraceEvent::Recovery { seq: 2, .. })),
        "recompute decision must be visible in the trace"
    );

    // ...and the survivors' recompute left every output bit-identical.
    assert_eq!(serial_res.batches.len(), dist_res.batches.len());
    for (a, b) in serial_res.batches.iter().zip(&dist_res.batches) {
        assert_eq!(a.n_tuples, b.n_tuples, "batch {}", a.seq);
        assert_eq!(a.plan_metrics, b.plan_metrics, "batch {} plan", a.seq);
        assert_eq!(a.map_stage, b.map_stage, "batch {} map stage", a.seq);
        assert_eq!(a.reduce_stage, b.reduce_stage, "batch {}", a.seq);
        assert_eq!(a.processing, b.processing, "batch {} processing", a.seq);
    }
    assert_eq!(serial_res.windows.len(), dist_res.windows.len());
    for (a, b) in serial_res.windows.iter().zip(&dist_res.windows) {
        assert_eq!(a.aggregates, b.aggregates, "window {}", a.last_batch_seq);
    }
}
