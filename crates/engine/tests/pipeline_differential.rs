//! The pipeline-depth acceptance gate: the driver's bounded in-flight
//! window (`EngineConfig::pipeline_depth`) is a wall-clock-only
//! optimization, so every depth on every backend must stay **bit-identical**
//! to the serial depth-1 in-process oracle — per-batch plans, stage times,
//! aggregates, window outputs — and the recorded virtual-time spans must
//! still tile each batch's processing exactly. A worker killed mid-window
//! at depth 2 must be detected, the aborted in-flight window re-dispatched,
//! and the outputs left unchanged.
//!
//! These spawn OS processes for the distributed runs, so they live next to
//! the distributed smoke suite (CI runs both in the `distributed-smoke`
//! job) rather than the fast unit tier.

use prompt_core::partitioner::Technique;
use prompt_core::types::{Duration, Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;

/// Point the engine's worker-binary resolution at the freshly built
/// `prompt-worker` before any runtime launches.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PROMPT_WORKER_BIN", env!("CARGO_BIN_EXE_prompt-worker"));
    });
}

/// Skewed workload with a rotating hot key, so plans differ batch to batch
/// and the Prompt allocator's cross-batch state actually matters.
fn source(rate: usize, keys: u64) -> impl TupleSource {
    move |iv: Interval, out: &mut Vec<Tuple>| {
        let step = iv.len().0 / (rate as u64 + 1);
        let hot = iv.start.0 / 1_000_000 % keys; // rotates every batch
        for i in 0..rate {
            let key = if i % 4 == 0 { hot } else { i as u64 % keys };
            out.push(Tuple {
                ts: Time(iv.start.0 + step * (i as u64 + 1)),
                key: Key(key),
                value: (i % 13) as f64 - 3.0,
            });
        }
    }
}

fn cfg(backend: Backend, depth: usize) -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 3,
        cluster: Cluster::new(2, 4),
        backend,
        pipeline_depth: depth,
        trace: TraceLevel::Full,
        ..EngineConfig::default()
    }
}

fn run(backend: Backend, depth: usize, faults: NetFaultPlan) -> (RunResult, TraceRecorder) {
    ensure_worker_bin();
    let mut engine = StreamingEngine::new(
        cfg(backend, depth),
        Technique::Prompt,
        11,
        Job::identity("sum", ReduceOp::Sum),
    )
    .with_window(WindowSpec::sliding(
        Duration::from_secs(3),
        Duration::from_secs(1),
    ))
    .with_net_faults(faults);
    let mut src = source(700, 19);
    engine.run_traced(&mut src, 8)
}

/// Full bit-identity: everything the paper's figures are built from.
fn assert_runs_identical(label: &str, serial: &RunResult, other: &RunResult) {
    assert_eq!(serial.batches.len(), other.batches.len(), "{label}");
    for (a, b) in serial.batches.iter().zip(&other.batches) {
        assert_eq!(a.seq, b.seq, "{label}");
        assert_eq!(a.n_tuples, b.n_tuples, "{label} batch {}", a.seq);
        assert_eq!(a.n_keys, b.n_keys, "{label} batch {}", a.seq);
        assert_eq!(a.map_tasks, b.map_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.reduce_tasks, b.reduce_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.map_stage, b.map_stage, "{label} batch {} map", a.seq);
        assert_eq!(
            a.reduce_stage, b.reduce_stage,
            "{label} batch {} reduce",
            a.seq
        );
        assert_eq!(
            a.processing, b.processing,
            "{label} batch {} processing",
            a.seq
        );
        assert_eq!(
            a.queue_delay, b.queue_delay,
            "{label} batch {} queue delay",
            a.seq
        );
        assert_eq!(a.latency, b.latency, "{label} batch {} latency", a.seq);
        assert_eq!(
            a.map_task_times, b.map_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.reduce_task_times, b.reduce_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.plan_metrics, b.plan_metrics,
            "{label} batch {} plan metrics",
            a.seq
        );
        assert!(a.w.to_bits() == b.w.to_bits(), "{label} batch {} W", a.seq);
    }
    assert_eq!(serial.windows.len(), other.windows.len(), "{label}");
    for (a, b) in serial.windows.iter().zip(&other.windows) {
        assert_eq!(a.last_batch_seq, b.last_batch_seq, "{label}");
        assert_eq!(
            a.aggregates, b.aggregates,
            "{label} window at batch {} must be bit-identical",
            a.last_batch_seq
        );
    }
    assert_eq!(serial.backpressure, other.backpressure, "{label}");
}

/// Per batch, the PROCESSING_KINDS spans must tile `[start, start +
/// processing]` with no gaps regardless of how execution overlapped on the
/// wall clock — spans are applied at commit.
fn assert_spans_tile(label: &str, res: &RunResult, rec: &TraceRecorder) {
    let events = rec.events();
    for b in &res.batches {
        let spans_of = |kind: StageKind| -> u64 {
            events
                .iter()
                .filter(|e| {
                    matches!(e, TraceEvent::Span { seq, kind: k, .. }
                        if *seq == b.seq && *k == kind)
                })
                .map(|e| e.span_us())
                .sum()
        };
        let processing: u64 = PROCESSING_KINDS.iter().map(|&k| spans_of(k)).sum();
        assert_eq!(
            processing, b.processing.0,
            "{label} batch {}: processing spans must tile processing",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::QueueWait),
            b.queue_delay.0,
            "{label} batch {}: queue span",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::Accumulate),
            Duration::from_secs(1).0,
            "{label} batch {}: accumulate span is the batch interval",
            b.seq
        );
    }
}

/// The core differential sweep: depths 1/2/4 across all three backends
/// against the serial depth-1 in-process oracle.
#[test]
fn depth_sweep_is_bit_identical_across_backends() {
    let (oracle, _) = run(Backend::InProcess, 1, NetFaultPlan::none());
    assert_eq!(oracle.batches.len(), 8);
    for depth in [1, 2, 4] {
        for backend in [
            Backend::InProcess,
            Backend::Threaded { threads: 4 },
            Backend::Distributed {
                workers: 3,
                base_port: 0,
            },
        ] {
            let label = format!("{backend:?} depth {depth}");
            let (res, rec) = run(backend, depth, NetFaultPlan::none());
            assert_runs_identical(&label, &oracle, &res);
            assert_spans_tile(&label, &res, &rec);
            assert_eq!(res.worker_losses, 0, "{label}");
            assert_eq!(res.recoveries, 0, "{label}");
            if matches!(backend, Backend::Distributed { .. }) {
                let net = res.net.expect("distributed runs report wire stats");
                assert_eq!(net.workers_lost, 0, "{label}");
            } else {
                assert!(res.net.is_none(), "{label}");
            }
        }
    }
}

/// A worker killed mid-window while two batches are in flight: the runtime
/// aborts the unfinished window, the driver re-dispatches it on the
/// survivors (fresh assignments replay from the assignment cache, so the
/// stateful allocator is never consulted twice), and outputs stay
/// bit-identical.
#[test]
fn worker_kill_mid_window_recovers_at_depth_2() {
    let (oracle, _) = run(Backend::InProcess, 1, NetFaultPlan::none());
    let dist = Backend::Distributed {
        workers: 3,
        base_port: 0,
    };
    for (label, faults) in [
        // Killed before its Map tasks dispatch: the submit path aborts.
        ("kill-before", NetFaultPlan::none().kill_before(2, 1)),
        // Killed after Map completes, mid-shuffle: the drain path aborts.
        ("kill-after-map", NetFaultPlan::none().kill_after_map(2, 1)),
    ] {
        let (res, rec) = run(dist, 2, faults);
        assert_runs_identical(label, &oracle, &res);
        assert_spans_tile(label, &res, &rec);
        assert_eq!(res.worker_losses, 1, "{label}: exactly one loss");
        assert_eq!(res.recoveries, 1, "{label}: exactly one recovery");
        let net = res.net.expect("distributed runs report wire stats");
        assert_eq!(net.workers_lost, 1, "{label}");
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::WorkerLost { worker: 1, .. })),
            "{label}: loss must be traced"
        );
    }
}
