//! The adaptive-policy acceptance gate: a [`PolicySpec::Adaptive`] run's
//! per-batch decisions are a pure function of prior-batch statistics, so an
//! adaptive run must be **bit-identical** — per-batch plans, stage times,
//! aggregates, window outputs, span tiling — to the same workload forced
//! through the recorded technique sequence ([`PolicySpec::Forced`]), on all
//! three backends, including across a worker kill that lands on the batch
//! where the policy switches strategies mid-run. Decisions must also be
//! invariant to the trace level: `Off`, `Summary` and `Full` runs pick the
//! same techniques.
//!
//! These spawn OS processes for the distributed runs, so they live next to
//! the distributed smoke suite (CI runs both in the `distributed-smoke`
//! job) rather than the fast unit tier.

use prompt_core::partitioner::Technique;
use prompt_core::types::{Duration, Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;

/// Point the engine's worker-binary resolution at the freshly built
/// `prompt-worker` before any runtime launches.
fn ensure_worker_bin() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::set_var("PROMPT_WORKER_BIN", env!("CARGO_BIN_EXE_prompt-worker"));
    });
}

/// A drifting workload: the first four batches are near-uniform over 200
/// keys (where Hash wins), the rest put half the mass on one hot key (where
/// Prompt wins). An adaptive run started on Hash must switch mid-run.
fn drift_source(rate: usize) -> impl TupleSource {
    move |iv: Interval, out: &mut Vec<Tuple>| {
        let step = iv.len().0 / (rate as u64 + 1);
        let skewed = iv.start.0 >= 4_000_000; // batches 4+ on a 1 s interval
        for i in 0..rate {
            let key = if skewed {
                if i % 2 == 0 {
                    0
                } else {
                    1 + (i as u64 % 30)
                }
            } else {
                i as u64 % 200
            };
            out.push(Tuple {
                ts: Time(iv.start.0 + step * (i as u64 + 1)),
                key: Key(key),
                value: (i % 13) as f64 - 3.0,
            });
        }
    }
}

fn cfg(backend: Backend, policy: PolicySpec, trace: TraceLevel) -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 3,
        cluster: Cluster::new(2, 4),
        backend,
        trace,
        policy,
        ..EngineConfig::default()
    }
}

fn run(
    backend: Backend,
    policy: PolicySpec,
    trace: TraceLevel,
    faults: NetFaultPlan,
) -> (RunResult, TraceRecorder) {
    ensure_worker_bin();
    let mut engine = StreamingEngine::new(
        cfg(backend, policy, trace),
        Technique::Hash,
        11,
        Job::identity("sum", ReduceOp::Sum),
    )
    .with_window(WindowSpec::sliding(
        Duration::from_secs(3),
        Duration::from_secs(1),
    ))
    .with_net_faults(faults);
    let mut src = drift_source(600);
    engine.run_traced(&mut src, 8)
}

fn adaptive() -> PolicySpec {
    PolicySpec::Adaptive(AdaptiveConfig::default())
}

/// The per-batch technique sequence a run recorded.
fn techniques_of(res: &RunResult) -> Vec<Technique> {
    res.batches
        .iter()
        .map(|b| b.technique.expect("policy runs record the technique"))
        .collect()
}

/// Full bit-identity: everything the paper's figures are built from, plus
/// the per-batch technique log.
fn assert_runs_identical(label: &str, serial: &RunResult, other: &RunResult) {
    assert_eq!(serial.batches.len(), other.batches.len(), "{label}");
    for (a, b) in serial.batches.iter().zip(&other.batches) {
        assert_eq!(a.seq, b.seq, "{label}");
        assert_eq!(a.technique, b.technique, "{label} batch {}", a.seq);
        assert_eq!(a.n_tuples, b.n_tuples, "{label} batch {}", a.seq);
        assert_eq!(a.n_keys, b.n_keys, "{label} batch {}", a.seq);
        assert_eq!(a.map_tasks, b.map_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.reduce_tasks, b.reduce_tasks, "{label} batch {}", a.seq);
        assert_eq!(a.map_stage, b.map_stage, "{label} batch {} map", a.seq);
        assert_eq!(
            a.reduce_stage, b.reduce_stage,
            "{label} batch {} reduce",
            a.seq
        );
        assert_eq!(
            a.processing, b.processing,
            "{label} batch {} processing",
            a.seq
        );
        assert_eq!(
            a.queue_delay, b.queue_delay,
            "{label} batch {} queue delay",
            a.seq
        );
        assert_eq!(a.latency, b.latency, "{label} batch {} latency", a.seq);
        assert_eq!(
            a.map_task_times, b.map_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.reduce_task_times, b.reduce_task_times,
            "{label} batch {}",
            a.seq
        );
        assert_eq!(
            a.plan_metrics, b.plan_metrics,
            "{label} batch {} plan metrics",
            a.seq
        );
        assert!(a.w.to_bits() == b.w.to_bits(), "{label} batch {} W", a.seq);
    }
    assert_eq!(serial.windows.len(), other.windows.len(), "{label}");
    for (a, b) in serial.windows.iter().zip(&other.windows) {
        assert_eq!(a.last_batch_seq, b.last_batch_seq, "{label}");
        assert_eq!(
            a.aggregates, b.aggregates,
            "{label} window at batch {} must be bit-identical",
            a.last_batch_seq
        );
    }
    assert_eq!(serial.backpressure, other.backpressure, "{label}");
}

/// Per batch, the PROCESSING_KINDS spans must tile `[start, start +
/// processing]` with no gaps. The policy's `Select` phase is wall-clock
/// observability, not virtual time, so it never perturbs the tiling.
fn assert_spans_tile(label: &str, res: &RunResult, rec: &TraceRecorder) {
    let events = rec.events();
    for b in &res.batches {
        let spans_of = |kind: StageKind| -> u64 {
            events
                .iter()
                .filter(|e| {
                    matches!(e, TraceEvent::Span { seq, kind: k, .. }
                        if *seq == b.seq && *k == kind)
                })
                .map(|e| e.span_us())
                .sum()
        };
        let processing: u64 = PROCESSING_KINDS.iter().map(|&k| spans_of(k)).sum();
        assert_eq!(
            processing, b.processing.0,
            "{label} batch {}: processing spans must tile processing",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::QueueWait),
            b.queue_delay.0,
            "{label} batch {}: queue span",
            b.seq
        );
    }
}

/// The decision log must be coherent: one decision per batch in sequence
/// order, each naming the technique the batch actually ran, with switch
/// flags mirrored in the counters and the `PolicySwitch` event stream.
fn assert_decision_log_coherent(label: &str, res: &RunResult, rec: &TraceRecorder) {
    assert_eq!(
        res.policy_decisions.len(),
        res.batches.len(),
        "{label}: one decision per batch"
    );
    for (d, b) in res.policy_decisions.iter().zip(&res.batches) {
        assert_eq!(d.seq, b.seq, "{label}");
        assert_eq!(Some(d.technique), b.technique, "{label} batch {}", b.seq);
        assert_eq!(d.switched, d.technique != d.prev, "{label} batch {}", b.seq);
    }
    let switches: Vec<&PolicyDecision> =
        res.policy_decisions.iter().filter(|d| d.switched).collect();
    assert_eq!(
        rec.counter(Counter::PolicyDecisions),
        res.batches.len() as u64,
        "{label}"
    );
    assert_eq!(
        rec.counter(Counter::PolicySwitches),
        switches.len() as u64,
        "{label}"
    );
    let events = rec.events();
    for d in &switches {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::PolicySwitch { seq, from, to }
                if *seq == d.seq && *from == d.prev.label() && *to == d.technique.label())),
            "{label}: switch at batch {} must be traced",
            d.seq
        );
    }
}

/// The core differential: the adaptive run switches techniques mid-run, and
/// replaying its recorded sequence through `PolicySpec::Forced` is
/// bit-identical on every backend — as is the adaptive run itself.
#[test]
fn adaptive_matches_forced_replay_on_all_backends() {
    let (oracle, orec) = run(
        Backend::InProcess,
        adaptive(),
        TraceLevel::Full,
        NetFaultPlan::none(),
    );
    assert_eq!(oracle.batches.len(), 8);
    assert_decision_log_coherent("oracle", &oracle, &orec);
    let sequence = techniques_of(&oracle);
    let distinct: std::collections::BTreeSet<String> = sequence.iter().map(|t| t.label()).collect();
    assert!(
        distinct.len() >= 2,
        "the drift workload must force a mid-run switch, got {sequence:?}"
    );
    assert_eq!(
        sequence[0],
        Technique::Hash,
        "batch 0 has no statistics: it keeps the constructor technique"
    );
    assert!(
        sequence.contains(&Technique::Prompt),
        "the skewed tail must drive the policy to Prompt: {sequence:?}"
    );

    for backend in [
        Backend::InProcess,
        Backend::Threaded { threads: 4 },
        Backend::Distributed {
            workers: 3,
            base_port: 0,
        },
    ] {
        let label = format!("{backend:?} adaptive");
        let (res, rec) = run(backend, adaptive(), TraceLevel::Full, NetFaultPlan::none());
        assert_runs_identical(&label, &oracle, &res);
        assert_spans_tile(&label, &res, &rec);
        assert_decision_log_coherent(&label, &res, &rec);

        let label = format!("{backend:?} forced replay");
        let (res, rec) = run(
            backend,
            PolicySpec::Forced(sequence.clone()),
            TraceLevel::Full,
            NetFaultPlan::none(),
        );
        assert_runs_identical(&label, &oracle, &res);
        assert_spans_tile(&label, &res, &rec);
    }
}

/// Decisions may not depend on observability: `Off`, `Summary` and `Full`
/// adaptive runs pick the same per-batch techniques and produce the same
/// numbers.
#[test]
fn decisions_are_trace_level_invariant() {
    let (oracle, _) = run(
        Backend::InProcess,
        adaptive(),
        TraceLevel::Full,
        NetFaultPlan::none(),
    );
    for trace in [TraceLevel::Off, TraceLevel::Summary] {
        let (res, _) = run(Backend::InProcess, adaptive(), trace, NetFaultPlan::none());
        let label = format!("trace {trace:?}");
        assert_eq!(
            techniques_of(&oracle),
            techniques_of(&res),
            "{label}: technique sequence"
        );
        assert_eq!(
            oracle.policy_decisions, res.policy_decisions,
            "{label}: full decision log"
        );
        assert_runs_identical(&label, &oracle, &res);
    }
}

/// A non-Fixed policy clamps the pipeline to depth 1, so a depth-4 config
/// must be bit-identical to the depth-1 run.
#[test]
fn adaptive_clamps_pipeline_depth() {
    let (oracle, _) = run(
        Backend::InProcess,
        adaptive(),
        TraceLevel::Full,
        NetFaultPlan::none(),
    );
    let mut deep = cfg(Backend::InProcess, adaptive(), TraceLevel::Full);
    deep.pipeline_depth = 4;
    let mut engine = StreamingEngine::new(
        deep,
        Technique::Hash,
        11,
        Job::identity("sum", ReduceOp::Sum),
    )
    .with_window(WindowSpec::sliding(
        Duration::from_secs(3),
        Duration::from_secs(1),
    ));
    let mut src = drift_source(600);
    let (res, _) = engine.run_traced(&mut src, 8);
    assert_runs_identical("depth 4 clamped", &oracle, &res);
}

/// A worker killed exactly on the batch where the policy switches
/// strategies: the batch is re-partitioned with the *same* per-batch
/// technique on the survivors and the outputs stay bit-identical.
#[test]
fn worker_kill_on_switch_batch_recovers() {
    let (oracle, orec) = run(
        Backend::InProcess,
        adaptive(),
        TraceLevel::Full,
        NetFaultPlan::none(),
    );
    let switch_seq = oracle
        .policy_decisions
        .iter()
        .find(|d| d.switched)
        .expect("the drift workload must switch")
        .seq;
    assert_decision_log_coherent("oracle", &oracle, &orec);
    let dist = Backend::Distributed {
        workers: 3,
        base_port: 0,
    };
    for (label, faults) in [
        (
            "kill-before-switch-batch",
            NetFaultPlan::none().kill_before(switch_seq, 1),
        ),
        (
            "kill-after-map-switch-batch",
            NetFaultPlan::none().kill_after_map(switch_seq, 1),
        ),
    ] {
        let (res, rec) = run(dist, adaptive(), TraceLevel::Full, faults);
        assert_runs_identical(label, &oracle, &res);
        assert_spans_tile(label, &res, &rec);
        assert_decision_log_coherent(label, &res, &rec);
        assert_eq!(res.worker_losses, 1, "{label}: exactly one loss");
        assert_eq!(res.recoveries, 1, "{label}: exactly one recovery");
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, TraceEvent::WorkerLost { worker: 1, .. })),
            "{label}: loss must be traced"
        );
    }
}
