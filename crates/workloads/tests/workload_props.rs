//! Property tests for the scenario wall's drift/arrival composition APIs:
//! every arrival process places sorted, in-interval timestamps, and the
//! time-varying key distributions never escape their declared keyspace.

use prompt_core::source::TupleSource;
use prompt_core::types::{Duration, Interval, Time};
use prompt_workloads::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build one of the five arrival processes from generated parameters.
/// `kind` selects the variant; the scalar inputs are reinterpreted per
/// variant so a single strategy sweeps the whole family.
fn arrival(kind: u8, a: f64, b: f64, period_ms: u64, duty: f64) -> RateProfile {
    let period = Duration::from_millis(period_ms);
    match kind % 5 {
        0 => RateProfile::Constant { rate: a },
        1 => RateProfile::Sinusoidal {
            base: a,
            // Keep the rate non-negative, as the variant documents.
            amplitude: b.min(a),
            period,
        },
        2 => RateProfile::Ramp {
            start: a,
            slope: b - 1000.0,
        },
        3 => RateProfile::Step {
            low: a.min(b),
            high: a.max(b),
            period,
            duty,
        },
        _ => RateProfile::Bursty {
            base: a,
            burst: b,
            period,
            duty,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn timestamps_sorted_and_in_interval_under_every_arrival(
        kind in 0u8..5,
        a in 10.0f64..3000.0,
        b in 0.0f64..2000.0,
        period_ms in 50u64..5000,
        duty in 0.05f64..0.95,
        start_s in 0u64..30,
    ) {
        let p = arrival(kind, a, b, period_ms, duty);
        let iv = Interval::new(Time::from_secs(start_s), Time::from_secs(start_s + 1));
        let ts = p.timestamps(iv);
        prop_assert_eq!(ts.len(), p.count_in(iv), "timestamp count must match the integral");
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]), "timestamps must be monotonic");
        prop_assert!(ts.iter().all(|&t| iv.contains(t)), "timestamps must stay in-interval");
    }

    #[test]
    fn generator_output_is_sorted_under_every_arrival(
        kind in 0u8..5,
        a in 100.0f64..2000.0,
        b in 0.0f64..1000.0,
        period_ms in 100u64..3000,
        seed in any::<u64>(),
    ) {
        let p = arrival(kind, a, b, period_ms, 0.3);
        let mut g = StreamGenerator::new(
            p,
            KeyModel::Static(Box::new(UniformKeys::new(256))),
            ValueModel::Unit,
            seed,
        );
        let mut out = Vec::new();
        for batch in 0..3u64 {
            let iv = Interval::new(Time::from_secs(batch), Time::from_secs(batch + 1));
            let start = out.len();
            g.fill(iv, &mut out);
            prop_assert!(out[start..].windows(2).all(|w| w[0].ts <= w[1].ts));
            prop_assert!(out[start..].iter().all(|t| iv.contains(t.ts)));
        }
    }

    #[test]
    fn alpha_drift_never_escapes_declared_keyspace(
        n in 1u64..5000,
        from in 0.0f64..2.0,
        to in 0.0f64..2.0,
        window_s in 1u64..20,
        t_ms in 0u64..40_000,
        seed in any::<u64>(),
    ) {
        let mut d = AlphaDrift::new(n, from, to, Time::ZERO, Time::from_secs(window_s));
        prop_assert_eq!(d.cardinality(), n);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Time::from_millis(t_ms);
        for _ in 0..64 {
            let k = d.sample(t, &mut rng);
            prop_assert!(k.0 < n, "key {} outside keyspace of {}", k.0, n);
        }
    }

    #[test]
    fn hot_set_churn_never_escapes_declared_keyspace(
        n in 1u64..100_000,
        hot_frac in 0.01f64..1.0,
        hot_mass in 0.0f64..1.0,
        period_ms in 100u64..5000,
        t_ms in 0u64..60_000,
        seed in any::<u64>(),
    ) {
        let hot_keys = ((n as f64 * hot_frac) as u64).clamp(1, n);
        let mut d = HotSetChurn::new(n, hot_keys, hot_mass, Duration::from_millis(period_ms));
        prop_assert_eq!(d.cardinality(), n);
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Time::from_millis(t_ms);
        for _ in 0..64 {
            let k = d.sample(t, &mut rng);
            prop_assert!(k.0 < n, "key {} outside keyspace of {}", k.0, n);
        }
    }

    #[test]
    fn timed_models_compose_with_the_generator(
        n in 2u64..2000,
        t0_choice in 0u8..2,
        seed in any::<u64>(),
    ) {
        let model: Box<dyn TimedKeyDistribution> = if t0_choice == 0 {
            Box::new(AlphaDrift::new(n, 0.2, 1.6, Time::ZERO, Time::from_secs(4)))
        } else {
            Box::new(HotSetChurn::new(n, (n / 2).max(1), 0.7, Duration::from_secs(1)))
        };
        let mut g = StreamGenerator::new(
            RateProfile::Constant { rate: 500.0 },
            KeyModel::Timed(model),
            ValueModel::Unit,
            seed,
        );
        let mut out = Vec::new();
        g.fill(Interval::new(Time::ZERO, Time::from_secs(2)), &mut out);
        prop_assert!(!out.is_empty());
        prop_assert!(out.iter().all(|t| t.key.0 < n));
        prop_assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}
