//! The generic stream generator: a rate profile × a key model × a value
//! model, implementing the engine's [`TupleSource`].

use prompt_core::source::TupleSource;
use prompt_core::types::{Interval, Key, Time, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::drift::TimedKeyDistribution;
use crate::keydist::KeyDistribution;
use crate::rate::RateProfile;

/// How keys evolve over stream time.
pub enum KeyModel {
    /// A fixed distribution.
    Static(Box<dyn KeyDistribution>),
    /// A time-dependent distribution (skew drift, hot-set churn — see
    /// [`crate::drift`]). The *shape* varies with stream time while the key
    /// space stays fixed, complementing [`KeyModel::Drifting`] which varies
    /// cardinality under a uniform shape.
    Timed(Box<dyn TimedKeyDistribution>),
    /// Uniform over a cardinality that drifts linearly with time:
    /// `n(t) = clamp(base + per_sec · t, min, max)`. Drives the elasticity
    /// experiments where the *data distribution* (number of distinct keys)
    /// grows or shrinks (Fig. 12).
    Drifting {
        /// Cardinality at `t = 0`.
        base: f64,
        /// Cardinality change per second (negative to shrink).
        per_sec: f64,
        /// Lower clamp (≥ 1).
        min: u64,
        /// Upper clamp.
        max: u64,
    },
}

impl KeyModel {
    /// Sample a key at stream time `t`.
    pub fn sample(&mut self, t: Time, rng: &mut StdRng) -> Key {
        match self {
            KeyModel::Static(d) => d.sample(rng),
            KeyModel::Timed(d) => d.sample(t, rng),
            KeyModel::Drifting {
                base,
                per_sec,
                min,
                max,
            } => {
                let n = (*base + *per_sec * t.as_secs_f64())
                    .round()
                    .clamp(*min as f64, *max as f64) as u64;
                Key(rng.random_range(0..n.max(1)))
            }
        }
    }

    /// The (current or static) cardinality bound.
    pub fn cardinality_at(&self, t: Time) -> u64 {
        match self {
            KeyModel::Static(d) => d.cardinality(),
            KeyModel::Timed(d) => d.cardinality(),
            KeyModel::Drifting {
                base,
                per_sec,
                min,
                max,
            } => (*base + *per_sec * t.as_secs_f64())
                .round()
                .clamp(*min as f64, *max as f64) as u64,
        }
    }
}

/// A custom value generator: `(key, rng) -> value`.
pub type ValueFn = Box<dyn FnMut(Key, &mut StdRng) -> f64 + Send>;

/// Value model: what payload each tuple carries.
pub enum ValueModel {
    /// Constant 1.0 — counting queries.
    Unit,
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Custom generator.
    Custom(ValueFn),
}

impl ValueModel {
    fn sample(&mut self, key: Key, rng: &mut StdRng) -> f64 {
        match self {
            ValueModel::Unit => 1.0,
            ValueModel::Uniform { lo, hi } => rng.random_range(*lo..*hi),
            ValueModel::Custom(f) => f(key, rng),
        }
    }
}

/// A deterministic, seeded tuple stream.
pub struct StreamGenerator {
    rate: RateProfile,
    keys: KeyModel,
    values: ValueModel,
    rng: StdRng,
}

impl StreamGenerator {
    /// Create a generator.
    pub fn new(rate: RateProfile, keys: KeyModel, values: ValueModel, seed: u64) -> Self {
        StreamGenerator {
            rate,
            keys,
            values,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Replace the rate profile mid-stream (used by scripted experiments).
    pub fn set_rate(&mut self, rate: RateProfile) {
        self.rate = rate;
    }

    /// The current rate profile.
    pub fn rate(&self) -> RateProfile {
        self.rate
    }

    /// The key model (for cardinality reporting).
    pub fn key_model(&self) -> &KeyModel {
        &self.keys
    }
}

impl TupleSource for StreamGenerator {
    fn fill(&mut self, interval: Interval, out: &mut Vec<Tuple>) {
        let stamps = self.rate.timestamps(interval);
        out.reserve(stamps.len());
        for ts in stamps {
            let key = self.keys.sample(ts, &mut self.rng);
            let value = self.values.sample(key, &mut self.rng);
            out.push(Tuple::new(ts, key, value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keydist::ZipfKeys;
    use prompt_core::types::Duration;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Time::from_secs(a), Time::from_secs(b))
    }

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mk = || {
            StreamGenerator::new(
                RateProfile::Constant { rate: 5000.0 },
                KeyModel::Static(Box::new(ZipfKeys::new(1000, 1.0))),
                ValueModel::Unit,
                99,
            )
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        mk().fill(iv(0, 1), &mut a);
        mk().fill(iv(0, 1), &mut b);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        assert!(!a.is_empty());
    }

    #[test]
    fn timestamps_sorted_within_interval() {
        let mut g = StreamGenerator::new(
            RateProfile::Sinusoidal {
                base: 2000.0,
                amplitude: 1500.0,
                period: Duration::from_secs(3),
            },
            KeyModel::Static(Box::new(ZipfKeys::new(100, 0.5))),
            ValueModel::Uniform { lo: 1.0, hi: 2.0 },
            1,
        );
        let mut out = Vec::new();
        g.fill(iv(2, 3), &mut out);
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(out.iter().all(|t| iv(2, 3).contains(t.ts)));
        assert!(out.iter().all(|t| (1.0..2.0).contains(&t.value)));
    }

    #[test]
    fn drifting_keys_grow_cardinality() {
        let mut model = KeyModel::Drifting {
            base: 10.0,
            per_sec: 100.0,
            min: 1,
            max: 100_000,
        };
        assert_eq!(model.cardinality_at(Time::ZERO), 10);
        assert_eq!(model.cardinality_at(Time::from_secs(10)), 1010);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let k = model.sample(Time::from_secs(100), &mut rng);
            assert!(k.0 < 10_010);
        }
    }

    #[test]
    fn drifting_keys_clamp_at_min() {
        let model = KeyModel::Drifting {
            base: 1000.0,
            per_sec: -100.0,
            min: 50,
            max: 1000,
        };
        assert_eq!(model.cardinality_at(Time::from_secs(100)), 50);
    }

    #[test]
    fn custom_value_model() {
        let mut g = StreamGenerator::new(
            RateProfile::Constant { rate: 100.0 },
            KeyModel::Static(Box::new(crate::keydist::UniformKeys::new(4))),
            ValueModel::Custom(Box::new(|k, _| k.0 as f64 * 10.0)),
            5,
        );
        let mut out = Vec::new();
        g.fill(iv(0, 1), &mut out);
        assert!(out.iter().all(|t| t.value == t.key.0 as f64 * 10.0));
    }
}
