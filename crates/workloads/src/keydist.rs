//! Key distributions: uniform and Zipf.
//!
//! SynD (§7.1) draws keys from a Zipf distribution with exponents
//! `z ∈ {0.1 … 2.0}` over up to 10⁷ distinct keys. The sampler is Hörmann &
//! Derflinger's rejection-inversion method for monotone discrete
//! distributions — O(1) per sample with no table memory, so sweeping large
//! cardinalities stays cheap.

use prompt_core::types::Key;
use rand::Rng;

/// A distribution over keys `0 .. cardinality`.
pub trait KeyDistribution: Send {
    /// Draw one key.
    fn sample(&mut self, rng: &mut dyn rand::RngCore) -> Key;

    /// Number of distinct keys in the support.
    fn cardinality(&self) -> u64;
}

/// Uniform keys over `0 .. n`.
#[derive(Clone, Debug)]
pub struct UniformKeys {
    n: u64,
}

impl UniformKeys {
    /// Uniform over `n ≥ 1` keys.
    pub fn new(n: u64) -> UniformKeys {
        assert!(n >= 1, "need at least one key");
        UniformKeys { n }
    }
}

impl KeyDistribution for UniformKeys {
    fn sample(&mut self, rng: &mut dyn rand::RngCore) -> Key {
        Key(rng.random_range(0..self.n))
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Zipf-distributed keys: `P(k) ∝ (k+1)^(−s)` over `0 .. n`.
///
/// Rejection-inversion sampling (Hörmann & Derflinger 1996), the same
/// algorithm used by Apache Commons and `rand_distr`.
#[derive(Clone, Debug)]
pub struct ZipfKeys {
    n: u64,
    s: f64,
    h_x1: f64,
    h_n: f64,
    shift: f64,
}

impl ZipfKeys {
    /// Zipf over `n ≥ 1` keys with exponent `s > 0`.
    pub fn new(n: u64, s: f64) -> ZipfKeys {
        assert!(n >= 1, "need at least one key");
        assert!(
            s > 0.0,
            "exponent must be positive (use UniformKeys for s=0)"
        );
        let h_x1 = h_integral(1.5, s) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, s);
        let shift = 2.0 - h_integral_inverse(h_integral(2.5, s) - h(2.0, s), s);
        ZipfKeys {
            n,
            s,
            h_x1,
            h_n,
            shift,
        }
    }

    /// The distribution's exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Exact probability of rank `k` (1-based), for tests.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.n);
        let norm: f64 = (1..=self.n).map(|i| (i as f64).powf(-self.s)).sum();
        (k as f64).powf(-self.s) / norm
    }
}

/// `H(x) = ∫₁ˣ t^(−s) dt`, extended continuously through `s = 1`.
fn h_integral(x: f64, s: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - s) * log_x) * log_x
}

/// `h(x) = x^(−s)`.
fn h(x: f64, s: f64) -> f64 {
    (-s * x.ln()).exp()
}

/// Inverse of `h_integral`.
fn h_integral_inverse(u: f64, s: f64) -> f64 {
    let mut t = u * (1.0 - s);
    if t < -1.0 {
        // Numerical round-off: clamp into the domain.
        t = -1.0;
    }
    (helper1(t) * u).exp()
}

/// `helper1(x) = ln(1+x)/x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `helper2(x) = (eˣ − 1)/x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 + x * x / 6.0
    }
}

impl KeyDistribution for ZipfKeys {
    fn sample(&mut self, rng: &mut dyn rand::RngCore) -> Key {
        loop {
            let u: f64 = self.h_n + rng.random::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.s);
            let k64 = (x + 0.5).floor().clamp(1.0, self.n as f64);
            let k = k64 as u64;
            if k64 - x <= self.shift || u >= h_integral(k64 + 0.5, self.s) - h(k64, self.s) {
                return Key(k - 1); // 0-based key space
            }
        }
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Construct the appropriate distribution for a Zipf exponent, treating
/// `s ≈ 0` as uniform (the z-sweep of Fig. 11d starts at 0.1, but harnesses
/// may probe 0).
pub fn zipf_or_uniform(n: u64, s: f64) -> Box<dyn KeyDistribution> {
    if s < 1e-6 {
        Box::new(UniformKeys::new(n))
    } else {
        Box::new(ZipfKeys::new(n, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn freq_of(dist: &mut dyn KeyDistribution, samples: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; dist.cardinality() as usize];
        for _ in 0..samples {
            counts[dist.sample(&mut rng).0 as usize] += 1;
        }
        counts
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let mut d = UniformKeys::new(16);
        let counts = freq_of(&mut d, 64_000, 1);
        for &c in &counts {
            let dev = (c as f64 - 4000.0).abs() / 4000.0;
            assert!(dev < 0.12, "count {c}");
        }
    }

    #[test]
    fn zipf_matches_pmf() {
        for s in [0.5, 1.0, 1.5] {
            let mut d = ZipfKeys::new(100, s);
            let n = 200_000;
            let counts = freq_of(&mut d, n, 42);
            for k in [1u64, 2, 5, 10, 50] {
                let expect = d.pmf(k) * n as f64;
                let got = counts[(k - 1) as usize] as f64;
                let tol = 4.0 * expect.sqrt() + 6.0; // ~4σ
                assert!(
                    (got - expect).abs() < tol,
                    "s={s} k={k}: got {got}, expect {expect:.1}"
                );
            }
        }
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let mut d = ZipfKeys::new(50, 1.2);
        let counts = freq_of(&mut d, 100_000, 7);
        // Compare well-separated ranks to dodge sampling noise.
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[19]);
        assert!(counts[19] >= counts[49]);
    }

    #[test]
    fn zipf_small_exponent_is_nearly_uniform() {
        let mut d = ZipfKeys::new(10, 0.1);
        let counts = freq_of(&mut d, 100_000, 3);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "z=0.1 should be mild: {counts:?}");
    }

    #[test]
    fn zipf_high_exponent_concentrates() {
        let mut d = ZipfKeys::new(1000, 2.0);
        let counts = freq_of(&mut d, 100_000, 9);
        let head: usize = counts[..10].iter().sum();
        assert!(
            head as f64 > 0.9 * 100_000.0,
            "z=2 should concentrate in the head: {head}"
        );
    }

    #[test]
    fn zipf_covers_full_range_without_overflow() {
        let mut d = ZipfKeys::new(10_000_000, 0.8);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let k = d.sample(&mut rng);
            assert!(k.0 < 10_000_000);
        }
        assert_eq!(d.cardinality(), 10_000_000);
        assert_eq!(d.exponent(), 0.8);
    }

    #[test]
    fn zipf_or_uniform_dispatches() {
        assert_eq!(zipf_or_uniform(10, 0.0).cardinality(), 10);
        assert_eq!(zipf_or_uniform(10, 1.0).cardinality(), 10);
    }

    #[test]
    #[should_panic(expected = "exponent must be positive")]
    fn zero_exponent_rejected() {
        let _ = ZipfKeys::new(10, 0.0);
    }
}
