//! Time-varying key distributions: mid-stream skew drift and hot-set churn.
//!
//! Fang et al. (arXiv 1610.05121) observe that real streams vary in *both*
//! skewness and which keys are hot over time; a partitioner tuned on a
//! stationary Zipf snapshot can degrade badly when the exponent drifts or
//! the hot set rotates. These distributions make those regimes scriptable:
//! [`AlphaDrift`] sweeps the Zipf exponent linearly across a time window,
//! and [`HotSetChurn`] rotates a compact hot set on a fixed period. Both
//! plug into [`KeyModel::Timed`](crate::generator::KeyModel::Timed).

use prompt_core::types::{Duration, Key, Time};
use rand::{Rng, RngCore};

use crate::keydist::{zipf_or_uniform, KeyDistribution};

/// A key distribution whose shape depends on stream time.
///
/// Sampling is deterministic given the same `(t, rng)` call sequence, so a
/// generator driven by one of these stays replayable — the property every
/// differential test in the scenario wall relies on.
pub trait TimedKeyDistribution: Send {
    /// Draw one key for an arrival at stream time `t`.
    fn sample(&mut self, t: Time, rng: &mut dyn RngCore) -> Key;

    /// Upper bound on the key space across all times: every sampled key is
    /// `< cardinality()`.
    fn cardinality(&self) -> u64;
}

/// Zipf skew drift: the exponent sweeps linearly from `from` at `t0` to `to`
/// at `t1` (clamped outside the window), over a fixed key space of `n` keys.
///
/// The exponent is quantized to a 0.01 grid before building the sampler, so
/// the distribution in effect is a pure function of `t` (no dependence on
/// the sampling path) and rebuilds are rare.
pub struct AlphaDrift {
    n: u64,
    from: f64,
    to: f64,
    t0: Time,
    t1: Time,
    /// Quantized exponent (in grid steps) the cached sampler was built for.
    cached_step: Option<u64>,
    dist: Box<dyn KeyDistribution>,
}

/// Exponent quantization grid (steps of 0.01).
const ALPHA_GRID: f64 = 100.0;

impl AlphaDrift {
    /// Drift the Zipf exponent over `n ≥ 1` keys from `from` at `t0` to `to`
    /// at `t1 > t0`. Exponents must be non-negative (0 means uniform).
    pub fn new(n: u64, from: f64, to: f64, t0: Time, t1: Time) -> AlphaDrift {
        assert!(n >= 1, "need at least one key");
        assert!(t1 > t0, "drift window must have positive length");
        assert!(from >= 0.0 && to >= 0.0, "exponents must be non-negative");
        AlphaDrift {
            n,
            from,
            to,
            t0,
            t1,
            cached_step: None,
            dist: zipf_or_uniform(n, from),
        }
    }

    /// The effective exponent at stream time `t`.
    pub fn alpha_at(&self, t: Time) -> f64 {
        let span = self.t1.since(self.t0).as_secs_f64();
        let pos = (t.since(self.t0).as_secs_f64() / span).clamp(0.0, 1.0);
        self.from + (self.to - self.from) * pos
    }
}

impl TimedKeyDistribution for AlphaDrift {
    fn sample(&mut self, t: Time, rng: &mut dyn RngCore) -> Key {
        let step = (self.alpha_at(t) * ALPHA_GRID).round() as u64;
        if self.cached_step != Some(step) {
            self.dist = zipf_or_uniform(self.n, step as f64 / ALPHA_GRID);
            self.cached_step = Some(step);
        }
        self.dist.sample(rng)
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

/// Hot-set churn: a fraction `hot_mass` of arrivals lands uniformly on a
/// compact hot set of `hot_keys` consecutive keys whose position rotates
/// every `period` (a hash of the epoch index picks the offset); the rest is
/// uniform over all `n` keys. Which keys are heavy changes abruptly at each
/// epoch boundary — the regime that defeats any partitioner keying on a
/// stale heavy-hitter list.
pub struct HotSetChurn {
    n: u64,
    hot_keys: u64,
    hot_mass: f64,
    period: Duration,
}

impl HotSetChurn {
    /// Churn over `n` keys: `hot_keys ≤ n` hot keys carrying `hot_mass ∈
    /// [0, 1]` of the arrivals, rotating every `period > 0`.
    pub fn new(n: u64, hot_keys: u64, hot_mass: f64, period: Duration) -> HotSetChurn {
        assert!(n >= 1, "need at least one key");
        assert!(
            (1..=n).contains(&hot_keys),
            "hot set must be non-empty and fit the key space"
        );
        assert!((0.0..=1.0).contains(&hot_mass), "hot mass is a fraction");
        assert!(period.0 > 0, "churn period must be positive");
        HotSetChurn {
            n,
            hot_keys,
            hot_mass,
            period,
        }
    }

    /// First key of the hot set in effect at stream time `t`.
    pub fn hot_offset_at(&self, t: Time) -> u64 {
        let epoch = t.0 / self.period.0;
        prompt_core::hash::mix64(epoch ^ 0x4075E7) % self.n
    }
}

impl TimedKeyDistribution for HotSetChurn {
    fn sample(&mut self, t: Time, rng: &mut dyn RngCore) -> Key {
        let roll: f64 = rng.random();
        if roll < self.hot_mass {
            let offset = self.hot_offset_at(t);
            Key((offset + rng.random_range(0..self.hot_keys)) % self.n)
        } else {
            Key(rng.random_range(0..self.n))
        }
    }

    fn cardinality(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn draw(d: &mut dyn TimedKeyDistribution, t: Time, n: usize, seed: u64) -> Vec<Key> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(t, &mut rng)).collect()
    }

    #[test]
    fn alpha_drift_interpolates_and_clamps() {
        let d = AlphaDrift::new(1000, 0.5, 2.0, Time::from_secs(10), Time::from_secs(20));
        assert_eq!(d.alpha_at(Time::ZERO), 0.5, "clamped before window");
        assert_eq!(d.alpha_at(Time::from_secs(15)), 1.25);
        assert_eq!(d.alpha_at(Time::from_secs(30)), 2.0, "clamped after");
    }

    #[test]
    fn alpha_drift_skew_increases_over_time() {
        let mut d = AlphaDrift::new(10_000, 0.0, 1.8, Time::ZERO, Time::from_secs(10));
        // At t=0 the draw is uniform; by t=10s it is heavily skewed, so the
        // number of distinct keys in a fixed-size sample collapses.
        let early: HashSet<Key> = draw(&mut d, Time::ZERO, 2000, 7).into_iter().collect();
        let late: HashSet<Key> = draw(&mut d, Time::from_secs(10), 2000, 7)
            .into_iter()
            .collect();
        assert!(
            early.len() > 2 * late.len(),
            "skew never materialized: {} early vs {} late distinct keys",
            early.len(),
            late.len()
        );
    }

    #[test]
    fn alpha_drift_keys_stay_in_keyspace_and_deterministic() {
        let mk = || AlphaDrift::new(64, 0.2, 1.5, Time::ZERO, Time::from_secs(5));
        let mut a = mk();
        let mut b = mk();
        for step in 0..200u64 {
            let t = Time(step * 50_000);
            let ka = draw(&mut a, t, 5, step);
            let kb = draw(&mut b, t, 5, step);
            assert_eq!(ka, kb, "same (t, seed) must replay identically");
            assert!(ka.iter().all(|k| k.0 < 64));
        }
    }

    #[test]
    fn hot_set_rotates_between_epochs() {
        let mut d = HotSetChurn::new(100_000, 10, 1.0, Duration::from_secs(2));
        let o0 = d.hot_offset_at(Time::ZERO);
        let o1 = d.hot_offset_at(Time::from_secs(2));
        assert_ne!(o0, o1, "hot set did not move across the epoch boundary");
        assert_eq!(d.hot_offset_at(Time::from_secs(1)), o0, "stable in-epoch");
        // With hot_mass = 1.0 every draw lands inside the 10-key hot set.
        for k in draw(&mut d, Time::ZERO, 500, 3) {
            let rel = (k.0 + 100_000 - o0) % 100_000;
            assert!(rel < 10, "key {} outside hot set at offset {}", k.0, o0);
        }
    }

    #[test]
    fn hot_set_churn_mixes_hot_and_cold_mass() {
        let mut d = HotSetChurn::new(1_000, 5, 0.6, Duration::from_secs(1));
        let o = d.hot_offset_at(Time::ZERO);
        let keys = draw(&mut d, Time::ZERO, 4000, 11);
        assert!(keys.iter().all(|k| k.0 < 1_000));
        let hot = keys
            .iter()
            .filter(|k| (k.0 + 1_000 - o) % 1_000 < 5)
            .count();
        // ~60% direct hot mass plus a sliver of cold draws landing there.
        assert!(
            (2100..2900).contains(&hot),
            "hot fraction {hot}/4000 far from the configured 0.6"
        );
    }
}
