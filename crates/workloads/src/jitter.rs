//! Network-delay simulation: a wrapper that delivers an in-order stream
//! out of order, with each tuple's *arrival* lagging its event timestamp by
//! a random bounded delay.
//!
//! Used together with `prompt_engine::reorder::ReorderingReceiver` to
//! exercise the paper's bounded-delay admission contract (§2.1
//! assumption 2): if the jitter bound is within the receiver's `max_delay`,
//! every tuple still lands in the batch of its event timestamp.

use prompt_core::source::TupleSource;
use prompt_core::types::{Duration, Interval, Time, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Delivers `inner`'s tuples by arrival time = event time + U(0, max_jitter).
///
/// `fill(interval)` is interpreted in **arrival time**: it returns the
/// tuples whose arrival falls in the interval, in arrival order — which is
/// generally *not* event-time order, so this source must be consumed
/// through a reordering receiver.
pub struct JitterSource<S> {
    inner: S,
    max_jitter: Duration,
    /// Inner pulls happen in whole multiples of this quantum, so the inner
    /// generator sees the same canonical interval boundaries no matter what
    /// windows the consumer asks for (interval-driven generators produce
    /// boundary-dependent streams).
    quantum: Duration,
    rng: StdRng,
    /// (arrival, tuple) not yet delivered, sorted by arrival.
    pending: Vec<(Time, Tuple)>,
    /// Number of quanta already pulled from `inner`.
    quanta_pulled: u64,
}

impl<S: TupleSource> JitterSource<S> {
    /// Wrap `inner` with a jitter bound; the inner source is pulled in
    /// aligned 1 s quanta.
    pub fn new(inner: S, max_jitter: Duration, seed: u64) -> JitterSource<S> {
        JitterSource::with_quantum(inner, max_jitter, Duration::from_secs(1), seed)
    }

    /// Wrap `inner` with an explicit pull quantum (use the batch interval).
    pub fn with_quantum(
        inner: S,
        max_jitter: Duration,
        quantum: Duration,
        seed: u64,
    ) -> JitterSource<S> {
        assert!(quantum.0 > 0, "quantum must be positive");
        JitterSource {
            inner,
            max_jitter,
            quantum,
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
            quanta_pulled: 0,
        }
    }

    /// The jitter bound.
    pub fn max_jitter(&self) -> Duration {
        self.max_jitter
    }
}

impl<S: TupleSource> TupleSource for JitterSource<S> {
    fn fill(&mut self, interval: Interval, out: &mut Vec<Tuple>) {
        // Anything arriving before interval.end must have an event time
        // before interval.end (delays are non-negative), so pulling the
        // inner source through interval.end covers all candidates. Pull in
        // whole quanta so the inner stream is boundary-independent.
        while Time(self.quanta_pulled * self.quantum.0) < interval.end {
            let q = self.quanta_pulled;
            let chunk = Interval::new(Time(q * self.quantum.0), Time((q + 1) * self.quantum.0));
            let mut fresh = Vec::new();
            self.inner.fill(chunk, &mut fresh);
            self.quanta_pulled += 1;
            for t in fresh {
                let delay = Duration(self.rng.random_range(0..=self.max_jitter.0));
                self.pending.push((t.ts + delay, t));
            }
        }
        self.pending.sort_by_key(|&(arrival, _)| arrival);
        // Deliver everything that has arrived by interval.end.
        let split = self
            .pending
            .partition_point(|&(arrival, _)| arrival < interval.end);
        for (arrival, t) in self.pending.drain(..split) {
            if arrival >= interval.start {
                out.push(t);
            } else {
                // Arrival predates the requested window (the consumer
                // skipped time); deliver anyway to conserve tuples.
                out.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{KeyModel, StreamGenerator, ValueModel};
    use crate::keydist::UniformKeys;
    use crate::rate::RateProfile;

    fn gen(seed: u64) -> StreamGenerator {
        StreamGenerator::new(
            RateProfile::Constant { rate: 5_000.0 },
            KeyModel::Static(Box::new(UniformKeys::new(50))),
            ValueModel::Unit,
            seed,
        )
    }

    fn pull(src: &mut dyn TupleSource, a: u64, b: u64) -> Vec<Tuple> {
        let mut out = Vec::new();
        src.fill(
            Interval::new(Time::from_secs(a), Time::from_secs(b)),
            &mut out,
        );
        out
    }

    #[test]
    fn conserves_tuples_across_batches() {
        let mut plain = gen(3);
        let mut jittered = JitterSource::new(gen(3), Duration::from_millis(150), 9);
        let mut plain_total = 0;
        let mut jitter_early = 0;
        for s in 0..5 {
            plain_total += pull(&mut plain, s, s + 1).len();
            jitter_early += pull(&mut jittered, s, s + 1)
                .iter()
                .filter(|t| t.ts < Time::from_secs(5))
                .count();
        }
        // One more pull flushes stragglers (and generates new events, which
        // the event-time filter excludes).
        jitter_early += pull(&mut jittered, 5, 6)
            .iter()
            .filter(|t| t.ts < Time::from_secs(5))
            .count();
        assert_eq!(plain_total, jitter_early);
    }

    #[test]
    fn produces_out_of_order_arrivals() {
        let mut jittered = JitterSource::new(gen(5), Duration::from_millis(300), 5);
        let out = pull(&mut jittered, 0, 1);
        assert!(!out.is_empty());
        let inversions = out.windows(2).filter(|w| w[0].ts > w[1].ts).count();
        assert!(inversions > 0, "jitter should break event-time order");
    }

    #[test]
    fn zero_jitter_is_identity() {
        let mut plain = gen(7);
        let mut jittered = JitterSource::new(gen(7), Duration::ZERO, 1);
        let a = pull(&mut plain, 0, 1);
        let b = pull(&mut jittered, 0, 1);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        assert_eq!(jittered.max_jitter(), Duration::ZERO);
    }

    #[test]
    fn delayed_events_cross_interval_boundaries() {
        let mut jittered = JitterSource::new(gen(11), Duration::from_millis(400), 2);
        let first = pull(&mut jittered, 0, 1);
        let second = pull(&mut jittered, 1, 2);
        // Some tuples with event time in [0, 1s) must arrive during the
        // second interval.
        let stragglers = second.iter().filter(|t| t.ts < Time::from_secs(1)).count();
        assert!(stragglers > 0, "expected late arrivals");
        // And the first interval must not contain events at/after its end.
        assert!(first.iter().all(|t| t.ts < Time::from_secs(1)));
    }
}
