//! # prompt-workloads
//!
//! Workload generators for the Prompt (SIGMOD 2020) evaluation: the five
//! datasets of Table 1 rebuilt as seeded synthetic streams, arrival-rate
//! profiles (constant, sinusoidal, ramp, step), and the key/value
//! distribution machinery underneath (including an O(1) rejection-inversion
//! Zipf sampler).
//!
//! Every generator implements `prompt_core::source::TupleSource`, so it can
//! be plugged straight into `prompt_engine::driver::StreamingEngine`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod datasets;
pub mod drift;
pub mod generator;
pub mod interner;
pub mod jitter;
pub mod keydist;
pub mod merge;
pub mod rate;
pub mod records;

/// Convenient import surface.
pub mod prelude {
    pub use crate::datasets::{
        debs_taxi, gcm, synd, table1_profiles, tpch_lineitem, tweets, DatasetProfile, DebsField,
        DebsSource, TpchQuery, TpchSource,
    };
    pub use crate::drift::{AlphaDrift, HotSetChurn, TimedKeyDistribution};
    pub use crate::generator::{KeyModel, StreamGenerator, ValueModel};
    pub use crate::interner::{word, InternedSource, KeyInterner};
    pub use crate::jitter::JitterSource;
    pub use crate::keydist::{zipf_or_uniform, KeyDistribution, UniformKeys, ZipfKeys};
    pub use crate::merge::MergedSource;
    pub use crate::rate::RateProfile;
    pub use crate::records::{
        GcmEvent, GcmEventGenerator, LineItem, LineItemGenerator, TaxiTrip, TaxiTripGenerator,
        TweetGenerator, TweetRecord,
    };
}
