//! Structured dataset records.
//!
//! The tuple generators in [`crate::datasets`] produce the engine's wire
//! format directly. This module models the layer *above*: the actual record
//! schemas of the evaluation datasets (a DEBS'15 taxi trip, a Google
//! cluster-monitoring event, a TPC-H lineitem, a tweet), generators for
//! them, and the keyed projections that turn a record stream into the tuple
//! streams each query consumes — i.e. what the paper's "customized
//! receiver" does on ingestion.

use prompt_core::types::{Key, Time, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keydist::{KeyDistribution, UniformKeys, ZipfKeys};

/// A DEBS 2015 Grand Challenge taxi-trip record (drop-off ordered).
#[derive(Clone, Debug, PartialEq)]
pub struct TaxiTrip {
    /// Taxi medallion (the partitioning key of both DEBS queries).
    pub medallion: u64,
    /// Driver licence id.
    pub hack_license: u64,
    /// Pickup timestamp.
    pub pickup: Time,
    /// Drop-off timestamp (the record's event time).
    pub dropoff: Time,
    /// Trip distance in miles.
    pub trip_distance: f64,
    /// Metered fare in dollars.
    pub fare_amount: f64,
    /// Tip in dollars.
    pub tip_amount: f64,
    /// Total paid.
    pub total_amount: f64,
}

impl TaxiTrip {
    /// Project onto the DEBS Q1 tuple (fare keyed by medallion).
    pub fn fare_tuple(&self) -> Tuple {
        Tuple::new(self.dropoff, Key(self.medallion), self.fare_amount)
    }

    /// Project onto the DEBS Q2 tuple (distance keyed by medallion).
    pub fn distance_tuple(&self) -> Tuple {
        Tuple::new(self.dropoff, Key(self.medallion), self.trip_distance)
    }
}

/// A Google cluster-monitoring resource-usage event.
#[derive(Clone, Debug, PartialEq)]
pub struct GcmEvent {
    /// Machine identifier (partitioning key).
    pub machine_id: u64,
    /// Job identifier.
    pub job_id: u64,
    /// Event timestamp.
    pub timestamp: Time,
    /// CPU utilisation sample in `[0, 1]`.
    pub cpu: f64,
    /// Memory utilisation sample in `[0, 1]`.
    pub memory: f64,
}

impl GcmEvent {
    /// Project onto the GCM Q2 tuple (CPU keyed by machine).
    pub fn cpu_tuple(&self) -> Tuple {
        Tuple::new(self.timestamp, Key(self.machine_id), self.cpu)
    }

    /// Project onto a per-machine event-count tuple (GCM Q1).
    pub fn event_tuple(&self) -> Tuple {
        Tuple::keyed(self.timestamp, Key(self.machine_id))
    }
}

/// A TPC-H LineItem row, streamed as orders arrive.
#[derive(Clone, Debug, PartialEq)]
pub struct LineItem {
    /// Order key.
    pub order_key: u64,
    /// Part key (the partitioning key of TPC-H Q1 as the paper runs it).
    pub part_key: u64,
    /// Supplier key.
    pub supp_key: u64,
    /// Quantity ordered (1..=50).
    pub quantity: u32,
    /// Extended price.
    pub extended_price: f64,
    /// Discount fraction (0..0.1).
    pub discount: f64,
    /// Arrival (ship) timestamp.
    pub ship_time: Time,
}

impl LineItem {
    /// Project onto the TPC-H Q1 tuple (quantity keyed by part).
    pub fn quantity_tuple(&self) -> Tuple {
        Tuple::new(self.ship_time, Key(self.part_key), self.quantity as f64)
    }

    /// Whether the row passes TPC-H Q6's predicate.
    pub fn qualifies_q6(&self) -> bool {
        self.quantity < 24 && (0.05..=0.07).contains(&self.discount)
    }

    /// Project onto the TPC-H Q6 revenue tuple (0 when not qualifying, so
    /// the query's Map filter drops it).
    pub fn revenue_tuple(&self) -> Tuple {
        let revenue = if self.qualifies_q6() {
            self.extended_price * self.discount
        } else {
            0.0
        };
        Tuple::new(self.ship_time, Key(self.part_key), revenue)
    }
}

/// A tweet: a user posting a short sequence of words.
#[derive(Clone, Debug, PartialEq)]
pub struct TweetRecord {
    /// Posting user.
    pub user_id: u64,
    /// Post timestamp.
    pub timestamp: Time,
    /// Word identifiers (vocabulary indices).
    pub words: Vec<u32>,
}

impl TweetRecord {
    /// Flat-map onto word tuples — "each tweet is split into words that are
    /// used as the key" (§7.1).
    pub fn word_tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        let ts = self.timestamp;
        self.words
            .iter()
            .map(move |&w| Tuple::keyed(ts, Key(w as u64)))
    }
}

/// Generator for taxi-trip records at `trips_per_sec`.
pub struct TaxiTripGenerator {
    medallions: ZipfKeys,
    trips_per_sec: f64,
    rng: StdRng,
    next_seq: u64,
}

impl TaxiTripGenerator {
    /// Construct with the fleet size and trip rate.
    pub fn new(medallions: u64, trips_per_sec: f64, seed: u64) -> TaxiTripGenerator {
        TaxiTripGenerator {
            medallions: ZipfKeys::new(medallions, 0.6),
            trips_per_sec,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
        }
    }

    /// Generate the trips dropping off during `[start, start + 1s)`.
    pub fn second(&mut self, start: Time) -> Vec<TaxiTrip> {
        let n = self.trips_per_sec.round() as usize;
        let step = 1_000_000u64 / (n.max(1) as u64 + 1);
        (0..n)
            .map(|i| {
                self.next_seq += 1;
                let dropoff = Time(start.0 + step * (i as u64 + 1));
                let distance = if self.rng.random::<f64>() < 0.85 {
                    self.rng.random_range(0.5..5.0)
                } else {
                    self.rng.random_range(5.0..25.0)
                };
                let duration_us = (distance * 3.0 * 60.0 * 1e6) as u64; // ~20 mph
                let fare = 2.5 + 2.5 * distance + self.rng.random_range(0.0..2.0);
                let tip = fare * self.rng.random_range(0.0..0.3);
                TaxiTrip {
                    medallion: self.medallions.sample(&mut self.rng).0,
                    hack_license: self.next_seq % 40_000,
                    pickup: dropoff - prompt_core::types::Duration(duration_us),
                    dropoff,
                    trip_distance: distance,
                    fare_amount: fare,
                    tip_amount: tip,
                    total_amount: fare + tip,
                }
            })
            .collect()
    }
}

/// Generator for cluster-monitoring events.
pub struct GcmEventGenerator {
    machines: ZipfKeys,
    jobs: UniformKeys,
    events_per_sec: f64,
    rng: StdRng,
}

impl GcmEventGenerator {
    /// Construct with the cluster size and event rate.
    pub fn new(machines: u64, jobs: u64, events_per_sec: f64, seed: u64) -> GcmEventGenerator {
        GcmEventGenerator {
            machines: ZipfKeys::new(machines, 0.5),
            jobs: UniformKeys::new(jobs),
            events_per_sec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate the events of `[start, start + 1s)`.
    pub fn second(&mut self, start: Time) -> Vec<GcmEvent> {
        let n = self.events_per_sec.round() as usize;
        let step = 1_000_000u64 / (n.max(1) as u64 + 1);
        (0..n)
            .map(|i| GcmEvent {
                machine_id: self.machines.sample(&mut self.rng).0,
                job_id: self.jobs.sample(&mut self.rng).0,
                timestamp: Time(start.0 + step * (i as u64 + 1)),
                cpu: self.rng.random_range(0.0..1.0),
                memory: self.rng.random_range(0.0..1.0),
            })
            .collect()
    }
}

/// Generator for lineitem rows.
pub struct LineItemGenerator {
    parts: UniformKeys,
    rows_per_sec: f64,
    rng: StdRng,
    next_order: u64,
}

impl LineItemGenerator {
    /// Construct with the part-universe size and row rate.
    pub fn new(parts: u64, rows_per_sec: f64, seed: u64) -> LineItemGenerator {
        LineItemGenerator {
            parts: UniformKeys::new(parts),
            rows_per_sec,
            rng: StdRng::seed_from_u64(seed),
            next_order: 1,
        }
    }

    /// Generate the rows shipping during `[start, start + 1s)`.
    pub fn second(&mut self, start: Time) -> Vec<LineItem> {
        let n = self.rows_per_sec.round() as usize;
        let step = 1_000_000u64 / (n.max(1) as u64 + 1);
        (0..n)
            .map(|i| {
                self.next_order += 1;
                LineItem {
                    order_key: self.next_order,
                    part_key: self.parts.sample(&mut self.rng).0,
                    supp_key: self.rng.random_range(0..10_000),
                    quantity: self.rng.random_range(1..=50),
                    extended_price: self.rng.random_range(900.0..105_000.0),
                    discount: self.rng.random_range(0.0..0.1),
                    ship_time: Time(start.0 + step * (i as u64 + 1)),
                }
            })
            .collect()
    }
}

/// Generator for tweets (words drawn from a Zipfian vocabulary).
pub struct TweetGenerator {
    vocabulary: ZipfKeys,
    tweets_per_sec: f64,
    rng: StdRng,
}

impl TweetGenerator {
    /// Construct with the vocabulary size and tweet rate.
    pub fn new(vocabulary: u64, tweets_per_sec: f64, seed: u64) -> TweetGenerator {
        TweetGenerator {
            vocabulary: ZipfKeys::new(vocabulary, 1.0),
            tweets_per_sec,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generate the tweets posted during `[start, start + 1s)`.
    pub fn second(&mut self, start: Time) -> Vec<TweetRecord> {
        let n = self.tweets_per_sec.round() as usize;
        let step = 1_000_000u64 / (n.max(1) as u64 + 1);
        (0..n)
            .map(|i| {
                let len = self.rng.random_range(8..=20);
                TweetRecord {
                    user_id: self.rng.random_range(0..1_000_000),
                    timestamp: Time(start.0 + step * (i as u64 + 1)),
                    words: (0..len)
                        .map(|_| self.vocabulary.sample(&mut self.rng).0 as u32)
                        .collect(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxi_trips_have_consistent_fields() {
        let mut generator = TaxiTripGenerator::new(10_000, 1_000.0, 1);
        let trips = generator.second(Time::from_secs(5));
        assert_eq!(trips.len(), 1_000);
        for t in &trips {
            assert!(t.pickup <= t.dropoff);
            assert!(t.dropoff >= Time::from_secs(5) && t.dropoff < Time::from_secs(6));
            assert!(t.trip_distance > 0.0);
            assert!(t.fare_amount >= 2.5 + 2.5 * 0.5);
            assert!((t.total_amount - t.fare_amount - t.tip_amount).abs() < 1e-9);
            assert!(t.medallion < 10_000);
            let fare = t.fare_tuple();
            assert_eq!(fare.key, Key(t.medallion));
            assert_eq!(fare.value, t.fare_amount);
            assert_eq!(t.distance_tuple().value, t.trip_distance);
        }
        // Drop-off ordered, per the DEBS feed.
        assert!(trips.windows(2).all(|w| w[0].dropoff <= w[1].dropoff));
    }

    #[test]
    fn gcm_events_project_correctly() {
        let mut generator = GcmEventGenerator::new(5_000, 100, 500.0, 2);
        let events = generator.second(Time::ZERO);
        assert_eq!(events.len(), 500);
        for e in &events {
            assert!((0.0..1.0).contains(&e.cpu));
            assert!((0.0..1.0).contains(&e.memory));
            assert_eq!(e.cpu_tuple().value, e.cpu);
            assert_eq!(e.event_tuple().value, 1.0);
            assert_eq!(e.cpu_tuple().key, Key(e.machine_id));
        }
    }

    #[test]
    fn lineitem_q6_predicate_matches_tuple() {
        let mut generator = LineItemGenerator::new(1_000, 2_000.0, 3);
        let rows = generator.second(Time::ZERO);
        assert_eq!(rows.len(), 2_000);
        let mut qualifying = 0;
        for r in &rows {
            let t = r.revenue_tuple();
            if r.qualifies_q6() {
                qualifying += 1;
                assert!((t.value - r.extended_price * r.discount).abs() < 1e-9);
            } else {
                assert_eq!(t.value, 0.0);
            }
            assert_eq!(r.quantity_tuple().value, r.quantity as f64);
            assert!((1..=50).contains(&r.quantity));
        }
        // Selectivity ballpark: quantity<24 (~46%) × discount band (~20%).
        let frac = qualifying as f64 / rows.len() as f64;
        assert!((0.03..0.2).contains(&frac), "selectivity {frac}");
        // Order keys are unique and increasing.
        assert!(rows.windows(2).all(|w| w[0].order_key < w[1].order_key));
    }

    #[test]
    fn tweets_flatmap_to_word_tuples() {
        let mut generator = TweetGenerator::new(10_000, 100.0, 4);
        let tweets = generator.second(Time::ZERO);
        assert_eq!(tweets.len(), 100);
        let words: Vec<Tuple> = tweets.iter().flat_map(|t| t.word_tuples()).collect();
        let avg_len = words.len() as f64 / tweets.len() as f64;
        assert!((8.0..=20.0).contains(&avg_len), "avg words {avg_len}");
        for t in &tweets {
            assert!(t.words.len() >= 8 && t.words.len() <= 20);
            for w in t.word_tuples() {
                assert_eq!(w.ts, t.timestamp);
                assert_eq!(w.value, 1.0);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let mut a = TaxiTripGenerator::new(100, 50.0, 9);
        let mut b = TaxiTripGenerator::new(100, 50.0, 9);
        assert_eq!(a.second(Time::ZERO), b.second(Time::ZERO));
        let mut a = TweetGenerator::new(100, 10.0, 9);
        let mut b = TweetGenerator::new(100, 10.0, 9);
        assert_eq!(a.second(Time::ZERO), b.second(Time::ZERO));
    }
}
