//! The five evaluation datasets (§7.1, Table 1), rebuilt as seeded synthetic
//! generators.
//!
//! The originals (a 2015 tweet sample, the DEBS'15 taxi trace, Google
//! cluster-monitoring traces, TPC-H) are not redistributable, so each
//! generator reproduces the *partitioning-relevant* properties instead: the
//! key-frequency distribution, key cardinality, and value ranges the queries
//! aggregate over. DESIGN.md documents each substitution.

use prompt_core::source::TupleSource;
use prompt_core::types::{Interval, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{KeyModel, StreamGenerator, ValueModel};
use crate::keydist::{UniformKeys, ZipfKeys};
use crate::rate::RateProfile;

/// Static description of a dataset, mirroring Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Size reported in Table 1 (GB).
    pub paper_size_gb: f64,
    /// Key cardinality reported in Table 1.
    pub paper_cardinality: u64,
    /// Cardinality the generator defaults to (laptop-scale).
    pub default_cardinality: u64,
    /// Approximate serialized bytes per record (for size estimates).
    pub bytes_per_record: usize,
}

/// Table 1, one row per dataset.
pub fn table1_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile {
            name: "Tweets",
            paper_size_gb: 50.0,
            paper_cardinality: 790_000,
            default_cardinality: 100_000,
            bytes_per_record: 64,
        },
        DatasetProfile {
            name: "SynD",
            paper_size_gb: 40.0,
            paper_cardinality: 1_000_000,
            default_cardinality: 500_000,
            bytes_per_record: 24,
        },
        DatasetProfile {
            name: "DEBS",
            paper_size_gb: 32.0,
            paper_cardinality: 8_000_000,
            default_cardinality: 200_000,
            bytes_per_record: 180,
        },
        DatasetProfile {
            name: "GCM",
            paper_size_gb: 16.0,
            paper_cardinality: 600_000,
            default_cardinality: 150_000,
            bytes_per_record: 96,
        },
        DatasetProfile {
            name: "TPC-H",
            paper_size_gb: 100.0,
            paper_cardinality: 1_000_000,
            default_cardinality: 200_000,
            bytes_per_record: 128,
        },
    ]
}

/// **Tweets**: tweets split into words at ingestion; the word is the key.
/// Natural-language word frequencies are Zipfian with exponent ≈ 1, so the
/// generator draws words from `Zipf(vocabulary, 1.0)`.
pub fn tweets(rate: RateProfile, vocabulary: u64, seed: u64) -> StreamGenerator {
    StreamGenerator::new(
        rate,
        KeyModel::Static(Box::new(ZipfKeys::new(vocabulary, 1.0))),
        ValueModel::Unit,
        seed,
    )
}

/// **SynD**: the synthetic Zipf dataset — keys from `Zipf(keys, z)` with the
/// exponent swept in `{0.1 … 2.0}` (Fig. 11d).
pub fn synd(rate: RateProfile, keys: u64, z: f64, seed: u64) -> StreamGenerator {
    StreamGenerator::new(
        rate,
        KeyModel::Static(crate::keydist::zipf_or_uniform(keys, z)),
        ValueModel::Unit,
        seed,
    )
}

/// Which DEBS trip field a stream carries as its tuple value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DebsField {
    /// Total fare (DEBS Query 1: total fare per taxi).
    Fare,
    /// Trip distance in miles (DEBS Query 2: total distance per taxi).
    Distance,
}

/// **DEBS 2015 taxi trips**: one record per completed trip, keyed by the
/// taxi medallion, arriving in drop-off order. Medallion activity is mildly
/// skewed (busy fleet taxis vs. occasional ones): `Zipf(medallions, 0.6)`.
/// Trip distance is drawn from a heavy-tailed mixture of short city hops and
/// longer airport runs; the fare follows the NYC meter structure
/// (`$2.50 + $2.50/mile`, plus noise).
pub fn debs_taxi(rate: RateProfile, medallions: u64, field: DebsField, seed: u64) -> DebsSource {
    DebsSource {
        inner: StreamGenerator::new(
            rate,
            KeyModel::Static(Box::new(ZipfKeys::new(medallions, 0.6))),
            ValueModel::Unit, // replaced per-tuple below
            seed,
        ),
        field,
        rng: StdRng::seed_from_u64(seed ^ 0xDEB5),
    }
}

/// The DEBS trip stream (see [`debs_taxi`]).
pub struct DebsSource {
    inner: StreamGenerator,
    field: DebsField,
    rng: StdRng,
}

impl DebsSource {
    fn trip_distance(rng: &mut StdRng) -> f64 {
        // 85% short hops 0.5–5 mi, 15% longer runs 5–25 mi.
        if rng.random::<f64>() < 0.85 {
            rng.random_range(0.5..5.0)
        } else {
            rng.random_range(5.0..25.0)
        }
    }
}

impl TupleSource for DebsSource {
    fn fill(&mut self, interval: Interval, out: &mut Vec<Tuple>) {
        let start = out.len();
        self.inner.fill(interval, out);
        for t in &mut out[start..] {
            let distance = Self::trip_distance(&mut self.rng);
            t.value = match self.field {
                DebsField::Distance => distance,
                DebsField::Fare => 2.5 + 2.5 * distance + self.rng.random_range(0.0..2.0),
            };
        }
    }
}

/// **Google Cluster Monitoring**: machine resource-usage events keyed by
/// machine id. Busy machines report more often (`Zipf(machines, 0.5)`);
/// the value is a CPU utilisation sample in `[0, 1]`.
pub fn gcm(rate: RateProfile, machines: u64, seed: u64) -> StreamGenerator {
    StreamGenerator::new(
        rate,
        KeyModel::Static(Box::new(ZipfKeys::new(machines, 0.5))),
        ValueModel::Uniform { lo: 0.0, hi: 1.0 },
        seed,
    )
}

/// Which TPC-H query a lineitem stream feeds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TpchQuery {
    /// Q1-style: quantity per Part-ID (value = `l_quantity` ∈ 1..=50).
    Q1Quantity,
    /// Q6-style: revenue (`l_extendedprice · l_discount`) for rows passing
    /// the discount/quantity predicate; non-qualifying rows carry 0 so the
    /// query's Map filter can drop them.
    Q6Revenue,
}

/// **TPC-H LineItem** as a stream of recent orders keyed by Part-ID
/// (uniform — TPC-H part references are uniform by construction).
pub fn tpch_lineitem(rate: RateProfile, parts: u64, query: TpchQuery, seed: u64) -> TpchSource {
    TpchSource {
        inner: StreamGenerator::new(
            rate,
            KeyModel::Static(Box::new(UniformKeys::new(parts))),
            ValueModel::Unit,
            seed,
        ),
        query,
        rng: StdRng::seed_from_u64(seed ^ 0x79C4),
    }
}

/// The TPC-H lineitem stream (see [`tpch_lineitem`]).
pub struct TpchSource {
    inner: StreamGenerator,
    query: TpchQuery,
    rng: StdRng,
}

impl TupleSource for TpchSource {
    fn fill(&mut self, interval: Interval, out: &mut Vec<Tuple>) {
        let start = out.len();
        self.inner.fill(interval, out);
        for t in &mut out[start..] {
            match self.query {
                TpchQuery::Q1Quantity => {
                    t.value = self.rng.random_range(1..=50) as f64;
                }
                TpchQuery::Q6Revenue => {
                    let quantity = self.rng.random_range(1..=50);
                    let discount = self.rng.random_range(0.0..0.1_f64);
                    let price = self.rng.random_range(900.0..105_000.0_f64);
                    let qualifies = quantity < 24 && (0.05..=0.07).contains(&discount);
                    t.value = if qualifies { price * discount } else { 0.0 };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prompt_core::types::{Interval, Time};

    fn iv() -> Interval {
        Interval::new(Time::ZERO, Time::from_secs(1))
    }

    fn pull(src: &mut dyn TupleSource, n_expected_min: usize) -> Vec<Tuple> {
        let mut out = Vec::new();
        src.fill(iv(), &mut out);
        assert!(out.len() >= n_expected_min, "only {} tuples", out.len());
        out
    }

    #[test]
    fn table1_has_five_rows_matching_paper() {
        let t1 = table1_profiles();
        assert_eq!(t1.len(), 5);
        let debs = t1.iter().find(|p| p.name == "DEBS").unwrap();
        assert_eq!(debs.paper_cardinality, 8_000_000);
        assert_eq!(debs.paper_size_gb, 32.0);
        let tpch = t1.iter().find(|p| p.name == "TPC-H").unwrap();
        assert_eq!(tpch.paper_size_gb, 100.0);
    }

    #[test]
    fn tweets_words_are_zipfian() {
        let mut src = tweets(RateProfile::Constant { rate: 50_000.0 }, 10_000, 1);
        let out = pull(&mut src, 40_000);
        let mut counts = std::collections::HashMap::new();
        for t in &out {
            *counts.entry(t.key.0).or_insert(0usize) += 1;
        }
        // The most frequent word should dominate the median word massively.
        let max = *counts.values().max().unwrap();
        assert!(max > out.len() / 50, "head word too light: {max}");
    }

    #[test]
    fn debs_fare_is_consistent_with_distance_model() {
        let mut src = debs_taxi(
            RateProfile::Constant { rate: 10_000.0 },
            1000,
            DebsField::Fare,
            2,
        );
        let out = pull(&mut src, 9_000);
        for t in &out {
            assert!(t.value >= 2.5 + 2.5 * 0.5, "fare {} below minimum", t.value);
            assert!(
                t.value <= 2.5 + 2.5 * 25.0 + 2.0,
                "fare {} too high",
                t.value
            );
        }
    }

    #[test]
    fn debs_distance_mode() {
        let mut src = debs_taxi(
            RateProfile::Constant { rate: 10_000.0 },
            1000,
            DebsField::Distance,
            2,
        );
        let out = pull(&mut src, 9_000);
        assert!(out.iter().all(|t| (0.5..25.0).contains(&t.value)));
        // Heavy tail: some long trips exist.
        assert!(out.iter().any(|t| t.value > 10.0));
    }

    #[test]
    fn gcm_values_are_utilisations() {
        let mut src = gcm(RateProfile::Constant { rate: 10_000.0 }, 5000, 3);
        let out = pull(&mut src, 9_000);
        assert!(out.iter().all(|t| (0.0..1.0).contains(&t.value)));
    }

    #[test]
    fn tpch_q1_quantities_in_range() {
        let mut src = tpch_lineitem(
            RateProfile::Constant { rate: 10_000.0 },
            1000,
            TpchQuery::Q1Quantity,
            4,
        );
        let out = pull(&mut src, 9_000);
        assert!(out
            .iter()
            .all(|t| (1.0..=50.0).contains(&t.value) && t.value.fract() == 0.0));
    }

    #[test]
    fn tpch_q6_selectivity_is_low_but_nonzero() {
        let mut src = tpch_lineitem(
            RateProfile::Constant { rate: 50_000.0 },
            1000,
            TpchQuery::Q6Revenue,
            5,
        );
        let out = pull(&mut src, 40_000);
        let qualifying = out.iter().filter(|t| t.value > 0.0).count();
        let frac = qualifying as f64 / out.len() as f64;
        // quantity<24 (~46%) × discount in [0.05,0.07] (~20%) ≈ 9%.
        assert!(
            (0.04..0.2).contains(&frac),
            "Q6 selectivity {frac} out of expected band"
        );
    }

    #[test]
    fn synd_uniform_fallback_for_zero_z() {
        let mut src = synd(RateProfile::Constant { rate: 10_000.0 }, 64, 0.0, 6);
        let out = pull(&mut src, 9_000);
        let mut counts = vec![0usize; 64];
        for t in &out {
            counts[t.key.0 as usize] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 2.0, "z=0 should be near-uniform");
    }
}
