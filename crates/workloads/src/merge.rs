//! Multi-receiver ingestion: merging several tuple streams.
//!
//! A deployment typically runs several stream receivers (the paper's Fig. 1
//! shows `SR_1`; Spark Streaming scales ingestion by adding receivers whose
//! blocks are unioned into each batch). [`MergedSource`] unions any number
//! of sources into one timestamp-ordered stream.

use prompt_core::source::TupleSource;
use prompt_core::types::{Interval, Tuple};

/// The timestamp-ordered union of several tuple sources.
pub struct MergedSource {
    sources: Vec<Box<dyn TupleSource>>,
}

impl MergedSource {
    /// Merge the given sources (at least one).
    pub fn new(sources: Vec<Box<dyn TupleSource>>) -> MergedSource {
        assert!(!sources.is_empty(), "need at least one source");
        MergedSource { sources }
    }

    /// Number of merged sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Always false (construction requires ≥ 1 source).
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

impl TupleSource for MergedSource {
    fn fill(&mut self, interval: Interval, out: &mut Vec<Tuple>) {
        let start = out.len();
        // Pull every source, then restore global timestamp order. Each
        // source's output is already sorted, so a k-way merge would be
        // O(n log k); a sort of the concatenation is O(n log n) with a much
        // better constant for the small k used in practice — and Rust's
        // merge sort exploits the pre-sorted runs.
        for source in &mut self.sources {
            source.fill(interval, out);
        }
        out[start..].sort_by_key(|t| t.ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::rate::RateProfile;
    use prompt_core::types::{Key, Time};

    fn pull(src: &mut dyn TupleSource) -> Vec<Tuple> {
        let mut out = Vec::new();
        src.fill(Interval::new(Time::ZERO, Time::from_secs(1)), &mut out);
        out
    }

    #[test]
    fn merged_stream_is_sorted_and_complete() {
        let a = datasets::tweets(RateProfile::Constant { rate: 3_000.0 }, 100, 1);
        let b = datasets::gcm(RateProfile::Constant { rate: 2_000.0 }, 50, 2);
        let mut merged = MergedSource::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(merged.len(), 2);
        assert!(!merged.is_empty());
        let out = pull(&mut merged);

        let mut a = datasets::tweets(RateProfile::Constant { rate: 3_000.0 }, 100, 1);
        let mut b = datasets::gcm(RateProfile::Constant { rate: 2_000.0 }, 50, 2);
        let na = pull(&mut a).len();
        let nb = pull(&mut b).len();
        assert_eq!(out.len(), na + nb);
        assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts), "must be sorted");
    }

    #[test]
    fn single_source_passthrough() {
        let a = datasets::synd(RateProfile::Constant { rate: 1_000.0 }, 20, 0.5, 3);
        let mut merged = MergedSource::new(vec![Box::new(a)]);
        let out = pull(&mut merged);
        let mut plain = datasets::synd(RateProfile::Constant { rate: 1_000.0 }, 20, 0.5, 3);
        let want = pull(&mut plain);
        assert_eq!(out.len(), want.len());
        assert!(out.iter().zip(&want).all(|(x, y)| x == y));
    }

    #[test]
    fn appends_after_existing_content() {
        let a = datasets::synd(RateProfile::Constant { rate: 100.0 }, 5, 0.5, 4);
        let mut merged = MergedSource::new(vec![Box::new(a)]);
        let mut out = vec![Tuple::keyed(Time::from_secs(9), Key(999))];
        merged.fill(Interval::new(Time::ZERO, Time::from_secs(1)), &mut out);
        assert_eq!(out[0].key, Key(999), "pre-existing content untouched");
        assert!(out.len() > 1);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_merge_rejected() {
        let _ = MergedSource::new(vec![]);
    }
}
