//! Arrival-rate profiles.
//!
//! The evaluation stresses partitioners with *variable* input rates: Fig. 11
//! drives a sinusoidal rate ("variable spikes in the workload"), and the
//! elasticity experiments (Fig. 12) ramp the rate up and down. A profile
//! maps stream time to an instantaneous rate; tuple timestamps inside a
//! batch interval are placed by integrating the rate over sub-slots, so
//! intra-batch burstiness is visible to time-based partitioning.

use prompt_core::types::{Duration, Interval, Time};

/// Number of integration sub-slots per interval when placing timestamps.
const SUB_SLOTS: usize = 64;

/// An arrival-rate profile in tuples per second of stream time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateProfile {
    /// Fixed rate.
    Constant {
        /// Tuples per second.
        rate: f64,
    },
    /// `base + amplitude · sin(2πt / period)` — Fig. 11's variable spikes.
    Sinusoidal {
        /// Mean rate.
        base: f64,
        /// Peak deviation from the mean (≤ base to stay non-negative).
        amplitude: f64,
        /// Oscillation period.
        period: Duration,
    },
    /// Linear ramp: `start + slope · t`, clamped at 0.
    Ramp {
        /// Rate at `t = 0`.
        start: f64,
        /// Rate change per second (may be negative).
        slope: f64,
    },
    /// Square wave alternating `low` / `high`, `duty` = fraction at high.
    Step {
        /// Low rate.
        low: f64,
        /// High rate.
        high: f64,
        /// Full cycle length.
        period: Duration,
        /// Fraction of the period spent at `high`, in `[0, 1]`.
        duty: f64,
    },
    /// Irregular bursts: like [`RateProfile::Step`], but each cycle's burst
    /// height is scaled by a deterministic per-cycle factor in `[0.5, 1.5)`
    /// (a hash of the cycle index), so no two consecutive spikes are alike —
    /// the "variable spikes" the scenario wall stresses partitioners with.
    Bursty {
        /// Baseline rate between bursts.
        base: f64,
        /// Mean burst height added on top of `base` while bursting.
        burst: f64,
        /// Full cycle length.
        period: Duration,
        /// Fraction of the period spent bursting, in `[0, 1]`.
        duty: f64,
    },
}

/// Deterministic per-cycle burst multiplier in `[0.5, 1.5)`.
fn burst_factor(cycle: u64) -> f64 {
    let h = prompt_core::hash::mix64(cycle ^ 0xB00_57ED);
    0.5 + (h % 4096) as f64 / 4096.0
}

impl RateProfile {
    /// Instantaneous rate at `t` (tuples/second, never negative).
    pub fn rate_at(&self, t: Time) -> f64 {
        let secs = t.as_secs_f64();
        let r = match *self {
            RateProfile::Constant { rate } => rate,
            RateProfile::Sinusoidal {
                base,
                amplitude,
                period,
            } => {
                let phase = 2.0 * std::f64::consts::PI * secs / period.as_secs_f64();
                base + amplitude * phase.sin()
            }
            RateProfile::Ramp { start, slope } => start + slope * secs,
            RateProfile::Step {
                low,
                high,
                period,
                duty,
            } => {
                let pos = (secs / period.as_secs_f64()).fract();
                if pos < duty {
                    high
                } else {
                    low
                }
            }
            RateProfile::Bursty {
                base,
                burst,
                period,
                duty,
            } => {
                let cycles = secs / period.as_secs_f64();
                let pos = cycles.fract();
                if pos < duty {
                    base + burst * burst_factor(cycles.floor() as u64)
                } else {
                    base
                }
            }
        };
        r.max(0.0)
    }

    /// Expected tuple count over `interval` (trapezoidal integration over
    /// sub-slots, rounded).
    pub fn count_in(&self, interval: Interval) -> usize {
        self.slot_counts(interval).iter().sum()
    }

    /// Integrated tuple counts per sub-slot of `interval`. The sum is the
    /// batch size; the shape carries the intra-batch burstiness.
    ///
    /// Integration is trapezoidal over 64 sub-slots, so for *discontinuous*
    /// profiles (`Step`, `Bursty`) the count can deviate from the exact integral by up
    /// to `(high − low) · dt / 2` per edge, where `dt` shrinks with the
    /// interval — i.e. counts are granularity-dependent near step edges.
    /// Continuous profiles integrate to within one tuple per call.
    pub fn slot_counts(&self, interval: Interval) -> Vec<usize> {
        let span = interval.len().as_secs_f64();
        if span <= 0.0 {
            return vec![0; SUB_SLOTS];
        }
        let dt = span / SUB_SLOTS as f64;
        let mut counts = Vec::with_capacity(SUB_SLOTS);
        let mut carry = 0.0f64;
        for i in 0..SUB_SLOTS {
            let t0 = interval.start + Duration::from_secs_f64(i as f64 * dt);
            let t1 = interval.start + Duration::from_secs_f64((i as f64 + 1.0) * dt);
            let area = 0.5 * (self.rate_at(t0) + self.rate_at(t1)) * dt + carry;
            let whole = area.floor().max(0.0);
            carry = area - whole;
            counts.push(whole as usize);
        }
        counts
    }

    /// Deterministic, sorted timestamps for the arrivals of `interval`:
    /// `slot_counts` tuples per sub-slot, evenly spaced within the slot.
    pub fn timestamps(&self, interval: Interval) -> Vec<Time> {
        let counts = self.slot_counts(interval);
        let span = interval.len().as_micros();
        let slot_us = span / SUB_SLOTS as u64;
        let mut out = Vec::with_capacity(counts.iter().sum());
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let start = interval.start.as_micros() + i as u64 * slot_us;
            let step = slot_us.max(1) / (c as u64 + 1);
            for j in 0..c {
                let ts = start + step * (j as u64 + 1);
                out.push(Time::from_micros(ts.min(interval.end.as_micros() - 1)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: u64, b: u64) -> Interval {
        Interval::new(Time::from_secs(a), Time::from_secs(b))
    }

    #[test]
    fn constant_counts_match_rate() {
        let p = RateProfile::Constant { rate: 1000.0 };
        let c = p.count_in(iv(0, 1));
        assert!((999..=1001).contains(&c), "got {c}");
        assert_eq!(p.rate_at(Time::from_secs(5)), 1000.0);
    }

    #[test]
    fn sinusoid_oscillates_and_integrates_to_base() {
        let p = RateProfile::Sinusoidal {
            base: 1000.0,
            amplitude: 500.0,
            period: Duration::from_secs(4),
        };
        // Peak at t = 1 s, trough at t = 3 s.
        assert!(p.rate_at(Time::from_secs(1)) > 1400.0);
        assert!(p.rate_at(Time::from_secs(3)) < 600.0);
        // One full period integrates to base·period.
        let total = p.count_in(iv(0, 4));
        assert!((3990..=4010).contains(&total), "got {total}");
    }

    #[test]
    fn sinusoid_never_negative() {
        let p = RateProfile::Sinusoidal {
            base: 100.0,
            amplitude: 500.0,
            period: Duration::from_secs(2),
        };
        for ms in (0..4000).step_by(17) {
            assert!(p.rate_at(Time::from_millis(ms)) >= 0.0);
        }
    }

    #[test]
    fn ramp_grows_and_clamps() {
        let p = RateProfile::Ramp {
            start: 100.0,
            slope: -50.0,
        };
        assert_eq!(p.rate_at(Time::ZERO), 100.0);
        assert_eq!(p.rate_at(Time::from_secs(1)), 50.0);
        assert_eq!(p.rate_at(Time::from_secs(10)), 0.0);
        let up = RateProfile::Ramp {
            start: 0.0,
            slope: 100.0,
        };
        assert!(up.count_in(iv(1, 2)) > up.count_in(iv(0, 1)));
    }

    #[test]
    fn step_alternates() {
        let p = RateProfile::Step {
            low: 10.0,
            high: 100.0,
            period: Duration::from_secs(2),
            duty: 0.5,
        };
        assert_eq!(p.rate_at(Time::from_millis(500)), 100.0);
        assert_eq!(p.rate_at(Time::from_millis(1500)), 10.0);
        assert_eq!(p.rate_at(Time::from_millis(2500)), 100.0);
    }

    #[test]
    fn timestamps_are_sorted_in_interval_and_bursty() {
        let p = RateProfile::Sinusoidal {
            base: 10_000.0,
            amplitude: 9_000.0,
            period: Duration::from_secs(1),
        };
        let interval = iv(0, 1);
        let ts = p.timestamps(interval);
        assert_eq!(ts.len(), p.count_in(interval));
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(ts.iter().all(|&t| interval.contains(t)));
        // Burstiness: the first half (rising peak) holds far more than the
        // second half (trough).
        let mid = Time::from_millis(500);
        let first = ts.iter().filter(|&&t| t < mid).count();
        let second = ts.len() - first;
        assert!(
            first > second * 2,
            "expected front-loaded arrivals: {first} vs {second}"
        );
    }

    #[test]
    fn counts_are_nearly_additive_across_batch_splits() {
        // The engine pulls per batch interval; splitting a span into batches
        // must conserve tuples up to one rounding carry per call.
        let profiles = [
            RateProfile::Constant { rate: 1234.5 },
            RateProfile::Sinusoidal {
                base: 2000.0,
                amplitude: 1500.0,
                period: Duration::from_secs(3),
            },
            RateProfile::Ramp {
                start: 100.0,
                slope: 333.3,
            },
            RateProfile::Step {
                low: 50.0,
                high: 5000.0,
                period: Duration::from_secs(2),
                duty: 0.3,
            },
        ];
        for p in profiles {
            let whole = p.count_in(iv(0, 6));
            let split: usize = (0..6).map(|s| p.count_in(iv(s, s + 1))).sum();
            let diff = whole.abs_diff(split);
            // Continuous profiles: one rounding carry per call. Step: the
            // trapezoid mis-integrates each discontinuity by up to
            // (high−low)·dt/2 with dt = 6s/64 on the whole span, 6 edges.
            let tolerance = if matches!(p, RateProfile::Step { .. }) {
                let dt = 6.0 / 64.0;
                (6.0 * (5000.0 - 50.0) * dt / 2.0) as usize
            } else {
                7
            };
            assert!(
                diff <= tolerance,
                "{p:?}: whole {whole} vs split {split} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn bursty_spikes_vary_per_cycle_deterministically() {
        let p = RateProfile::Bursty {
            base: 100.0,
            burst: 1000.0,
            period: Duration::from_secs(2),
            duty: 0.25,
        };
        // Inside the duty window: elevated; outside: baseline.
        assert!(p.rate_at(Time::from_millis(200)) >= 600.0);
        assert_eq!(p.rate_at(Time::from_millis(1500)), 100.0);
        // The same instant always sees the same rate.
        assert_eq!(
            p.rate_at(Time::from_millis(200)),
            p.rate_at(Time::from_millis(200))
        );
        // Burst heights differ across cycles (per-cycle factor).
        let heights: Vec<f64> = (0..8)
            .map(|c| p.rate_at(Time::from_millis(2000 * c + 200)))
            .collect();
        let distinct = heights
            .iter()
            .filter(|&&h| (h - heights[0]).abs() > 1e-9)
            .count();
        assert!(distinct >= 4, "spikes should vary: {heights:?}");
        // All heights stay within the declared envelope.
        for h in heights {
            assert!((100.0 + 500.0..100.0 + 1500.0).contains(&h), "{h}");
        }
    }

    #[test]
    fn bursty_timestamps_sorted_and_front_loaded() {
        let p = RateProfile::Bursty {
            base: 500.0,
            burst: 8000.0,
            period: Duration::from_secs(1),
            duty: 0.2,
        };
        let interval = iv(0, 1);
        let ts = p.timestamps(interval);
        assert_eq!(ts.len(), p.count_in(interval));
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(ts.iter().all(|&t| interval.contains(t)));
        // The burst occupies the first 20% of the cycle.
        let cutoff = Time::from_millis(250);
        let in_burst = ts.iter().filter(|&&t| t < cutoff).count();
        assert!(
            in_burst * 2 > ts.len(),
            "burst window should dominate: {in_burst}/{}",
            ts.len()
        );
    }

    #[test]
    fn empty_interval_yields_nothing() {
        let p = RateProfile::Constant { rate: 1000.0 };
        let empty = Interval::new(Time::from_secs(1), Time::from_secs(1));
        assert_eq!(p.count_in(empty), 0);
        assert!(p.timestamps(empty).is_empty());
    }
}
