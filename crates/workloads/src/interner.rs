//! String-key interning.
//!
//! The engine partitions on dense `u64` keys ([`prompt_core::types::Key`]),
//! but real workloads key on strings (words, medallion hashes, machine
//! names). [`KeyInterner`] is the bidirectional mapping the receiver layer
//! maintains: intern on ingestion, resolve for display. A deterministic
//! synthetic vocabulary generator produces realistic word spellings for the
//! tweet workload's output.

use prompt_core::hash::FastBuildHasher;
use prompt_core::source::TupleSource;
use prompt_core::types::{Interval, Key, Tuple};
use std::collections::HashMap;

/// Bidirectional `String ↔ Key` mapping with dense key assignment.
#[derive(Debug, Default)]
pub struct KeyInterner {
    by_name: HashMap<String, Key, FastBuildHasher>,
    by_key: Vec<String>,
}

impl KeyInterner {
    /// An empty interner.
    pub fn new() -> KeyInterner {
        KeyInterner::default()
    }

    /// Intern `name`, returning its stable key (allocating the next dense
    /// key on first sight).
    pub fn intern(&mut self, name: &str) -> Key {
        if let Some(&k) = self.by_name.get(name) {
            return k;
        }
        let k = Key(self.by_key.len() as u64);
        self.by_name.insert(name.to_string(), k);
        self.by_key.push(name.to_string());
        k
    }

    /// Resolve a key back to its name.
    pub fn resolve(&self, key: Key) -> Option<&str> {
        self.by_key.get(key.0 as usize).map(String::as_str)
    }

    /// Look up a name without interning.
    pub fn get(&self, name: &str) -> Option<Key> {
        self.by_name.get(name).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

/// A [`TupleSource`] adapter that routes every key of an inner source
/// through string interning: each generated `Key(rank)` is rendered to its
/// [`word`] spelling and re-interned in first-sight order, exactly like a
/// receiver ingesting raw text.
///
/// Used by the scenario wall's huge-cardinality tier to stress the interner
/// with millions of distinct names. Interning is deterministic (first-sight
/// dense assignment over a deterministic tuple stream), so wrapped sources
/// remain replayable and differential-testable.
pub struct InternedSource<S> {
    inner: S,
    interner: KeyInterner,
}

impl<S: TupleSource> InternedSource<S> {
    /// Wrap `inner`, interning every key it emits.
    pub fn new(inner: S) -> InternedSource<S> {
        InternedSource {
            inner,
            interner: KeyInterner::new(),
        }
    }

    /// The interner accumulated so far (for cardinality reporting).
    pub fn interner(&self) -> &KeyInterner {
        &self.interner
    }
}

impl<S: TupleSource> TupleSource for InternedSource<S> {
    fn fill(&mut self, interval: Interval, out: &mut Vec<Tuple>) {
        let start = out.len();
        self.inner.fill(interval, out);
        for t in &mut out[start..] {
            t.key = self.interner.intern(&word(t.key.0));
        }
    }
}

/// Deterministic synthetic vocabulary: pronounceable pseudo-words, one per
/// rank, stable across runs (`word(i)` alternates consonant/vowel runs
/// seeded by `i`). Rank 0 is the most frequent word under a Zipf draw, so
/// `word(rank)` labels the tweet workload's keys for human-readable output.
pub fn word(rank: u64) -> String {
    const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
    const VOWELS: &[u8] = b"aeiou";
    let mut x = prompt_core::hash::mix64(rank ^ 0x5EED);
    // 2–5 syllables depending on rank (frequent words are shorter, like
    // natural language).
    let syllables = 2 + (64 - (rank + 2).leading_zeros() as u64).min(3);
    let mut out = String::with_capacity(2 * syllables as usize);
    for _ in 0..syllables {
        out.push(CONSONANTS[(x % CONSONANTS.len() as u64) as usize] as char);
        x = prompt_core::hash::mix64(x);
        out.push(VOWELS[(x % VOWELS.len() as u64) as usize] as char);
        x = prompt_core::hash::mix64(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_roundtrip() {
        let mut interner = KeyInterner::new();
        assert!(interner.is_empty());
        let a = interner.intern("hello");
        let b = interner.intern("world");
        assert_eq!(interner.intern("hello"), a, "idempotent");
        assert_ne!(a, b);
        assert_eq!(interner.resolve(a), Some("hello"));
        assert_eq!(interner.resolve(b), Some("world"));
        assert_eq!(interner.get("world"), Some(b));
        assert_eq!(interner.get("missing"), None);
        assert_eq!(interner.resolve(Key(99)), None);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn keys_are_dense_and_ordered_by_first_sight() {
        let mut interner = KeyInterner::new();
        for (i, name) in ["x", "y", "z"].iter().enumerate() {
            assert_eq!(interner.intern(name), Key(i as u64));
        }
    }

    #[test]
    fn words_are_deterministic_and_mostly_distinct() {
        assert_eq!(word(5), word(5));
        let mut seen = std::collections::HashSet::new();
        for rank in 0..5_000 {
            seen.insert(word(rank));
        }
        // Pseudo-words may collide occasionally; most must be distinct.
        assert!(seen.len() > 4_500, "only {} distinct words", seen.len());
    }

    #[test]
    fn frequent_words_are_short() {
        assert!(word(0).len() <= 8);
        assert!(word(1_000_000).len() >= word(0).len());
        for rank in [0u64, 10, 1000] {
            let w = word(rank);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 4, "{w}");
        }
    }

    #[test]
    fn interned_vocabulary_labels_tweet_keys() {
        // The tweet generator draws Key(rank); word(rank) names it.
        let mut interner = KeyInterner::new();
        for rank in 0..100u64 {
            let k = interner.intern(&word(rank));
            assert_eq!(k, Key(rank), "dense vocabulary interning");
        }
        assert_eq!(interner.resolve(Key(42)), Some(word(42).as_str()));
    }
}
