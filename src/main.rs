//! The `prompt` command-line tool: run, compare, or inspect partitioning
//! techniques on the evaluation workloads. See `prompt --help`.

use prompt::cli::{self, Cli, Command};
use prompt::prelude::*;
use prompt_core::metrics::PlanMetrics;
use prompt_core::partitioner::Technique;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match cli::parse(&args) {
        Ok(cli) => cli,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(if args.first().map(String::as_str) == Some("--help") {
                0
            } else {
                2
            });
        }
    };
    match cli.command {
        Command::Run => run(&cli),
        Command::Compare => compare(&cli),
        Command::Partition => partition(&cli),
    }
}

fn engine_config(cli: &Cli) -> EngineConfig {
    let mut cfg = EngineConfig {
        batch_interval: cli::interval(&cli.opts),
        map_tasks: cli.opts.blocks,
        reduce_tasks: cli.opts.reducers,
        cluster: Cluster::new(2, 8),
        cost: CostModel::default().scaled(20.0),
        ..EngineConfig::default()
    };
    if cli.opts.elastic {
        cfg.backpressure_queue = f64::INFINITY;
        cfg.elasticity = Some(ScalerConfig::default());
    }
    if cli.opts.rebalance {
        cfg.backpressure_queue = f64::INFINITY;
        cfg.rebalance = RebalanceSpec::Auto(RebalanceConfig {
            n_groups: (cli.opts.reducers * 4).max(64),
            ..RebalanceConfig::default()
        });
    }
    cfg.policy = cli.opts.policy.clone();
    cfg
}

fn run(cli: &Cli) {
    let cfg = engine_config(cli);
    let mut engine = StreamingEngine::new(
        cfg,
        cli.opts.technique,
        cli.opts.seed,
        Job::identity("cli-count", ReduceOp::Count),
    )
    .with_window(WindowSpec::sliding(
        cli::interval(&cli.opts).mul_f64(5.0),
        cli::interval(&cli.opts),
    ));
    let mut source = cli::build_source(&cli.opts);
    let result = engine.run(source.as_mut(), cli.opts.batches);

    println!(
        "technique {} on {} @ {} tuples/s — {} batches",
        cli.opts.technique.label(),
        cli.opts.dataset,
        cli.opts.rate,
        result.batches.len()
    );
    println!("batch  tuples    keys   maps reds     W   latency ms  technique");
    for b in &result.batches {
        println!(
            "{:>5} {:>7} {:>7} {:>5} {:>4} {:>6.3} {:>10.1}  {}",
            b.seq,
            b.n_tuples,
            b.n_keys,
            b.map_tasks,
            b.reduce_tasks,
            b.w,
            b.latency.as_secs_f64() * 1e3,
            b.technique.map(|t| t.label()).unwrap_or_default()
        );
    }
    let switches = result
        .policy_decisions
        .iter()
        .filter(|d| d.switched)
        .count();
    if !result.policy_decisions.is_empty() {
        println!(
            "policy: {} decisions, {} switches",
            result.policy_decisions.len(),
            switches
        );
    }
    if !result.migrations.is_empty() {
        let moves: usize = result.migrations.iter().map(|(_, p)| p.moves.len()).sum();
        println!(
            "rebalance: {} plans, {} group moves",
            result.migrations.len(),
            moves
        );
    }
    println!(
        "\nstable: {}  |  mean W: {:.3}  |  throughput: {:.0} tuples/s  |  scale events: {}",
        result.stable(),
        result.steady_state_mean(|b| b.w),
        result.throughput(cli::interval(&cli.opts)),
        result.scale_events.len()
    );
    if let Some(window) = result.windows.last() {
        println!("top 5 keys of the last window:");
        for (key, value) in window.top_k(5) {
            println!("  key {:<10} {:>12.0}", key.0, value);
        }
    }
}

fn compare(cli: &Cli) {
    let job = Job::identity("cli-count", ReduceOp::Count);
    println!(
        "comparing techniques on {} @ {} tuples/s ({} batches of {} ms)",
        cli.opts.dataset, cli.opts.rate, cli.opts.batches, cli.opts.interval_ms
    );
    println!(
        "{:<12} {:>8} {:>9} {:>10} {:>7}",
        "technique", "stable", "mean W", "latency ms", "MPI"
    );
    for tech in Technique::EVALUATION_SET {
        let cfg = engine_config(cli);
        let mut engine = StreamingEngine::new(cfg, tech, cli.opts.seed, job.clone());
        let mut source = cli::build_source(&cli.opts);
        let result = engine.run(source.as_mut(), cli.opts.batches);
        println!(
            "{:<12} {:>8} {:>9.3} {:>10.1} {:>7.3}",
            tech.label(),
            result.stable(),
            result.steady_state_mean(|b| b.w),
            result.steady_state_mean(|b| b.latency.as_secs_f64()) * 1e3,
            result.steady_state_mean(|b| b.plan_metrics.mpi),
        );
    }
}

fn partition(cli: &Cli) {
    let mut source = cli::build_source(&cli.opts);
    let interval = Interval::new(Time::ZERO, Time::ZERO + cli::interval(&cli.opts));
    let mut tuples = Vec::new();
    source.fill(interval, &mut tuples);
    let batch = MicroBatch::new(tuples, interval);
    println!(
        "one batch of {} ({} tuples, {} keys) into {} blocks:",
        cli.opts.dataset,
        batch.len(),
        batch.distinct_keys(),
        cli.opts.blocks
    );
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "technique", "BSI", "BCI", "KSR", "MPI", "splits"
    );
    let mut techniques: Vec<Technique> = Technique::EVALUATION_SET.to_vec();
    techniques.push(Technique::DChoices(5));
    for tech in techniques {
        let plan = tech.build(cli.opts.seed).partition(&batch, cli.opts.blocks);
        let m = PlanMetrics::of(&plan);
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>8.3} {:>8.3} {:>8}",
            tech.label(),
            m.bsi,
            m.bci,
            m.ksr,
            m.mpi,
            plan.split_keys.len()
        );
        if cli.opts.verbose {
            let report = prompt_core::analysis::PlanReport::analyse(&plan, 5);
            for line in report.render().lines().skip(1) {
                println!("    {line}");
            }
        }
    }
}
