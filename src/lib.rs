//! # prompt
//!
//! Umbrella crate for the **Prompt** reproduction — *Dynamic
//! Data-Partitioning for Distributed Micro-batch Stream Processing Systems*
//! (Abdelhamid, Mahmood, Daghistani, Aref — SIGMOD 2020).
//!
//! This facade re-exports the four workspace crates:
//!
//! * [`prompt_core`] — the partitioning algorithms (Algorithms 1–3),
//!   baselines, cost-model metrics, and the bin-packing substrate.
//! * [`prompt_engine`] — the micro-batch stream-processing engine
//!   (simulated cluster + real threaded backend), windows, and the
//!   Algorithm 4 auto-scaler.
//! * [`prompt_workloads`] — the five evaluation datasets as
//!   seeded synthetic generators plus rate profiles.
//! * [`prompt_queries`] — the benchmark queries (WordCount,
//!   TopKCount, DEBS, GCM, TPC-H).
//!
//! ```
//! use prompt::prelude::*;
//!
//! // Run WordCount over a skewed tweet stream with Prompt partitioning.
//! let cfg = EngineConfig::default();
//! let mut engine = StreamingEngine::new(
//!     cfg,
//!     Technique::Prompt,
//!     42,
//!     Job::identity("wordcount", ReduceOp::Count),
//! );
//! let mut source = prompt::workloads::datasets::tweets(
//!     RateProfile::Constant { rate: 10_000.0 },
//!     5_000,
//!     42,
//! );
//! let result = engine.run(&mut source, 5);
//! assert!(result.stable());
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use prompt_core as core;
pub use prompt_engine as engine;
pub use prompt_queries as queries;
pub use prompt_workloads as workloads;

/// Everything a typical user needs, re-exported flat.
pub mod prelude {
    pub use prompt_core::prelude::*;
    pub use prompt_engine::prelude::*;
    pub use prompt_workloads::prelude::*;
}
