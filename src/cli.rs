//! Command-line interface of the `prompt` binary.
//!
//! Three subcommands:
//!
//! * `run` — stream a dataset through the engine with one technique and
//!   print per-batch telemetry plus window results.
//! * `compare` — run every technique on the same workload and print a
//!   comparison table (processing time, stability, plan quality).
//! * `partition` — one-shot: generate a single batch, partition it with
//!   every technique, print the BSI/BCI/KSR/MPI metrics.
//!
//! Parsing is hand-rolled (no CLI dependency): `--key value` pairs with
//! typed accessors and helpful errors.

use std::collections::BTreeMap;

use prompt_core::partitioner::Technique;
use prompt_core::source::TupleSource;
use prompt_core::types::Duration;
use prompt_engine::policy::{AdaptiveConfig, PolicySpec};
use prompt_workloads::datasets;
use prompt_workloads::rate::RateProfile;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand.
    pub command: Command,
    /// Common options.
    pub opts: Options,
}

/// Subcommands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Stream with one technique.
    Run,
    /// Compare all techniques.
    Compare,
    /// One-shot partitioning metrics.
    Partition,
}

/// Options shared across subcommands (each with a sensible default).
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Partitioning technique (`run` only).
    pub technique: Technique,
    /// Dataset name: tweets | synd | debs | gcm | tpch.
    pub dataset: String,
    /// Input rate (tuples/s).
    pub rate: f64,
    /// Zipf exponent for `synd`.
    pub skew: f64,
    /// Key cardinality.
    pub cardinality: u64,
    /// Number of batches to run.
    pub batches: usize,
    /// Batch interval in milliseconds.
    pub interval_ms: u64,
    /// Map tasks / blocks.
    pub blocks: usize,
    /// Reduce tasks.
    pub reducers: usize,
    /// Enable the Algorithm 4 auto-scaler.
    pub elastic: bool,
    /// Enable the key-group rebalancer (`run` only): fixed task count,
    /// hot key-groups migrate between workers at batch boundaries.
    pub rebalance: bool,
    /// RNG seed.
    pub seed: u64,
    /// Verbose output (per-block plan diagnostics for `partition`).
    pub verbose: bool,
    /// Partitioner-selection policy (`run` only): `fixed` keeps
    /// `--technique` for the whole run; `adaptive` scores the live sketch
    /// each batch and may hot-swap the strategy at batch boundaries.
    pub policy: PolicySpec,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            technique: Technique::Prompt,
            dataset: "tweets".into(),
            rate: 50_000.0,
            skew: 1.0,
            cardinality: 20_000,
            batches: 10,
            interval_ms: 1_000,
            blocks: 16,
            reducers: 16,
            elastic: false,
            rebalance: false,
            seed: 42,
            verbose: false,
            policy: PolicySpec::default(),
        }
    }
}

/// Parse a policy name.
pub fn parse_policy(s: &str) -> Result<PolicySpec, String> {
    match s.to_ascii_lowercase().as_str() {
        "fixed" => Ok(PolicySpec::default()),
        "adaptive" => Ok(PolicySpec::Adaptive(AdaptiveConfig::default())),
        other => Err(format!("unknown policy '{other}' (try: fixed, adaptive)")),
    }
}

/// Parse a technique name.
pub fn parse_technique(s: &str) -> Result<Technique, String> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "prompt" => Ok(Technique::Prompt),
        "prompt-postsort" | "postsort" => Ok(Technique::PromptPostSort),
        "time" | "time-based" | "timebased" => Ok(Technique::TimeBased),
        "shuffle" | "round-robin" => Ok(Technique::Shuffle),
        "hash" => Ok(Technique::Hash),
        other => {
            if let Some(d) = other.strip_prefix("pk") {
                return d
                    .parse()
                    .map(Technique::Pkg)
                    .map_err(|_| format!("bad PK degree in '{s}'"));
            }
            if let Some(d) = other.strip_prefix("cam") {
                let d = d.trim_matches(|c| c == '(' || c == ')');
                return d
                    .parse()
                    .map(Technique::Cam)
                    .map_err(|_| format!("bad cAM degree in '{s}'"));
            }
            if let Some(d) = other.strip_prefix("dchoices") {
                let d = d.trim_matches(|c| c == '(' || c == ')');
                return d
                    .parse()
                    .map(Technique::DChoices)
                    .map_err(|_| format!("bad D-Choices degree in '{s}'"));
            }
            Err(format!(
                "unknown technique '{s}' (try: prompt, time-based, shuffle, hash, pk2, pk5, cam4, dchoices5)"
            ))
        }
    }
}

/// Parse argv (without the program name).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        Some("run") => Command::Run,
        Some("compare") => Command::Compare,
        Some("partition") => Command::Partition,
        Some("--help") | Some("-h") | None => return Err(usage()),
        Some(other) => return Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    let mut kv: BTreeMap<String, String> = BTreeMap::new();
    let mut flags: Vec<String> = Vec::new();
    while let Some(arg) = it.next() {
        let Some(key) = arg.strip_prefix("--") else {
            return Err(format!("expected --option, got '{arg}'"));
        };
        if key == "elastic" || key == "rebalance" || key == "help" || key == "verbose" {
            flags.push(key.to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        kv.insert(key.to_string(), value.clone());
    }
    if flags.iter().any(|f| f == "help") {
        return Err(usage());
    }
    let mut opts = Options::default();
    let mut num = |key: &str, target: &mut f64| -> Result<(), String> {
        if let Some(v) = kv.remove(key) {
            *target = v
                .parse()
                .map_err(|_| format!("--{key}: bad number '{v}'"))?;
        }
        Ok(())
    };
    num("rate", &mut opts.rate)?;
    num("skew", &mut opts.skew)?;
    if let Some(v) = kv.remove("technique") {
        opts.technique = parse_technique(&v)?;
    }
    if let Some(v) = kv.remove("policy") {
        opts.policy = parse_policy(&v)?;
    }
    if let Some(v) = kv.remove("dataset") {
        let v = v.to_ascii_lowercase();
        if !["tweets", "synd", "debs", "gcm", "tpch"].contains(&v.as_str()) {
            return Err(format!("unknown dataset '{v}'"));
        }
        opts.dataset = v;
    }
    macro_rules! int_opt {
        ($key:literal, $field:ident) => {
            if let Some(v) = kv.remove($key) {
                opts.$field = v
                    .parse()
                    .map_err(|_| format!("--{}: bad integer '{}'", $key, v))?;
            }
        };
    }
    int_opt!("cardinality", cardinality);
    int_opt!("batches", batches);
    int_opt!("interval-ms", interval_ms);
    int_opt!("blocks", blocks);
    int_opt!("reducers", reducers);
    int_opt!("seed", seed);
    opts.elastic = flags.iter().any(|f| f == "elastic");
    opts.rebalance = flags.iter().any(|f| f == "rebalance");
    opts.verbose = flags.iter().any(|f| f == "verbose");
    // One load actuator per run (EngineConfig::validate enforces the same
    // exclusions; failing here gives a usage error instead of a panic).
    if opts.rebalance && opts.elastic {
        return Err(
            "--rebalance and --elastic are mutually exclusive (one actuator per run)".into(),
        );
    }
    if opts.rebalance && opts.policy != PolicySpec::default() {
        return Err("--rebalance requires the fixed policy (adaptive re-picks assigners)".into());
    }
    if let Some((key, _)) = kv.into_iter().next() {
        return Err(format!("unknown option '--{key}'\n\n{}", usage()));
    }
    Ok(Cli { command, opts })
}

/// Usage text.
pub fn usage() -> String {
    "prompt — dynamic data-partitioning for micro-batch stream processing (SIGMOD'20)

USAGE:
    prompt <COMMAND> [OPTIONS]

COMMANDS:
    run          stream a dataset through the engine with one technique
    compare      run every technique on the same workload, print a table
    partition    partition one batch with every technique, print metrics

OPTIONS (all optional):
    --technique <t>     prompt | time-based | shuffle | hash | pk2 | pk5 | cam4 | dchoices5
    --policy <p>        fixed | adaptive (run command)        [fixed]
    --dataset <d>       tweets | synd | debs | gcm | tpch     [tweets]
    --rate <r>          input rate, tuples/s                  [50000]
    --skew <z>          Zipf exponent (synd)                  [1.0]
    --cardinality <k>   distinct keys                         [20000]
    --batches <n>       batches to run                        [10]
    --interval-ms <ms>  batch interval                        [1000]
    --blocks <p>        map tasks / data blocks               [16]
    --reducers <r>      reduce tasks                          [16]
    --elastic           enable the Algorithm 4 auto-scaler
    --rebalance         enable the key-group rebalancer (run command)
    --verbose           per-block diagnostics (partition command)
    --seed <s>          RNG seed                              [42]
"
    .to_string()
}

/// Build the configured dataset source.
pub fn build_source(opts: &Options) -> Box<dyn TupleSource> {
    let rate = RateProfile::Constant { rate: opts.rate };
    match opts.dataset.as_str() {
        "tweets" => Box::new(datasets::tweets(rate, opts.cardinality, opts.seed)),
        "synd" => Box::new(datasets::synd(rate, opts.cardinality, opts.skew, opts.seed)),
        "debs" => Box::new(datasets::debs_taxi(
            rate,
            opts.cardinality,
            datasets::DebsField::Fare,
            opts.seed,
        )),
        "gcm" => Box::new(datasets::gcm(rate, opts.cardinality, opts.seed)),
        "tpch" => Box::new(datasets::tpch_lineitem(
            rate,
            opts.cardinality,
            datasets::TpchQuery::Q1Quantity,
            opts.seed,
        )),
        other => unreachable!("validated dataset {other}"),
    }
}

/// The batch interval as a [`Duration`].
pub fn interval(opts: &Options) -> Duration {
    Duration::from_millis(opts.interval_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_run_with_options() {
        let cli = parse(&argv(
            "run --technique pk5 --dataset synd --rate 120000 --skew 1.4 \
             --cardinality 9000 --batches 7 --interval-ms 500 --blocks 8 \
             --reducers 4 --elastic --seed 9",
        ))
        .unwrap();
        assert_eq!(cli.command, Command::Run);
        assert_eq!(cli.opts.technique, Technique::Pkg(5));
        assert_eq!(cli.opts.dataset, "synd");
        assert_eq!(cli.opts.rate, 120_000.0);
        assert_eq!(cli.opts.skew, 1.4);
        assert_eq!(cli.opts.cardinality, 9_000);
        assert_eq!(cli.opts.batches, 7);
        assert_eq!(cli.opts.interval_ms, 500);
        assert_eq!(cli.opts.blocks, 8);
        assert_eq!(cli.opts.reducers, 4);
        assert!(cli.opts.elastic);
        assert_eq!(cli.opts.seed, 9);
    }

    #[test]
    fn defaults_apply() {
        let cli = parse(&argv("compare")).unwrap();
        assert_eq!(cli.command, Command::Compare);
        assert_eq!(cli.opts, Options::default());
    }

    #[test]
    fn technique_aliases() {
        assert_eq!(parse_technique("Prompt").unwrap(), Technique::Prompt);
        assert_eq!(parse_technique("time-based").unwrap(), Technique::TimeBased);
        assert_eq!(parse_technique("PK2").unwrap(), Technique::Pkg(2));
        assert_eq!(parse_technique("cam4").unwrap(), Technique::Cam(4));
        assert_eq!(parse_technique("cam(8)").unwrap(), Technique::Cam(8));
        assert_eq!(
            parse_technique("dchoices5").unwrap(),
            Technique::DChoices(5)
        );
        assert_eq!(
            parse_technique("postsort").unwrap(),
            Technique::PromptPostSort
        );
        assert!(parse_technique("banana").is_err());
    }

    #[test]
    fn policy_option_parses() {
        assert_eq!(parse_policy("fixed").unwrap(), PolicySpec::default());
        assert!(matches!(
            parse_policy("Adaptive").unwrap(),
            PolicySpec::Adaptive(_)
        ));
        assert!(parse_policy("greedy").is_err());
        let cli = parse(&argv("run --policy adaptive")).unwrap();
        assert!(matches!(cli.opts.policy, PolicySpec::Adaptive(_)));
        assert!(parse(&argv("run --policy greedy"))
            .unwrap_err()
            .contains("unknown policy"));
    }

    #[test]
    fn rebalance_flag_parses_and_rejects_conflicting_actuators() {
        let cli = parse(&argv("run --rebalance --batches 5")).unwrap();
        assert!(cli.opts.rebalance);
        assert!(parse(&argv("run --rebalance --elastic"))
            .unwrap_err()
            .contains("mutually exclusive"));
        assert!(parse(&argv("run --rebalance --policy adaptive"))
            .unwrap_err()
            .contains("fixed policy"));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse(&argv("")).unwrap_err().contains("USAGE"));
        assert!(parse(&argv("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
        assert!(parse(&argv("run --rate"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&argv("run --rate abc"))
            .unwrap_err()
            .contains("bad number"));
        assert!(parse(&argv("run --dataset mars"))
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(parse(&argv("run --frob 1"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse(&argv("run extra"))
            .unwrap_err()
            .contains("expected --option"));
    }

    #[test]
    fn sources_build_for_every_dataset() {
        use prompt_core::types::{Interval, Time};
        for dataset in ["tweets", "synd", "debs", "gcm", "tpch"] {
            let opts = Options {
                dataset: dataset.into(),
                rate: 1_000.0,
                cardinality: 100,
                ..Options::default()
            };
            let mut src = build_source(&opts);
            let mut out = Vec::new();
            src.fill(Interval::new(Time::ZERO, Time::from_secs(1)), &mut out);
            assert!(!out.is_empty(), "{dataset}");
        }
        assert_eq!(interval(&Options::default()), Duration::from_secs(1));
    }
}
