//! Stability-model tests spanning engine + workloads: queueing under
//! overload, back-pressure, the throughput search, and the elasticity
//! controller's reaction to scripted load shapes.

use prompt::prelude::*;
use prompt::workloads::generator::{KeyModel, StreamGenerator, ValueModel};
use proptest::prelude::*;

fn engine(cost_scale: f64, tech: Technique) -> StreamingEngine {
    let cfg = EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 8,
        reduce_tasks: 8,
        cluster: Cluster::new(2, 4),
        cost: CostModel::default().scaled(cost_scale),
        ..EngineConfig::default()
    };
    StreamingEngine::new(cfg, tech, 17, Job::identity("count", ReduceOp::Count))
}

fn const_tweets(rate: f64) -> impl TupleSource {
    prompt::workloads::datasets::tweets(RateProfile::Constant { rate }, 3_000, 17)
}

#[test]
fn queue_delay_grows_linearly_under_constant_overload() {
    let mut eng = engine(400.0, Technique::Prompt); // heavy per-tuple cost
    let res = eng.run(&mut const_tweets(20_000.0), 10);
    assert!(res.backpressure);
    let delays: Vec<f64> = res
        .batches
        .iter()
        .map(|b| b.queue_delay.as_secs_f64())
        .collect();
    // Monotone growth with a roughly constant increment.
    assert!(delays.windows(2).all(|w| w[1] >= w[0]), "{delays:?}");
    let increments: Vec<f64> = delays.windows(2).map(|w| w[1] - w[0]).collect();
    let tail = &increments[3..];
    let mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(mean > 0.0, "queue must keep growing: {increments:?}");
    for inc in tail {
        assert!((inc - mean).abs() < 0.5 * mean + 0.05, "{increments:?}");
    }
}

#[test]
fn max_sustainable_rate_is_bracketed_by_stability() {
    let probe = |rate: f64| -> bool {
        let mut eng = engine(40.0, Technique::Prompt);
        let res = eng.run(&mut const_tweets(rate), 6);
        res.stable() && res.steady_state_mean(|b| b.w) <= 1.0
    };
    let max = prompt_engine::backpressure::max_sustainable_rate(probe, 1_000.0, 500_000.0, 9);
    // The located rate must itself be sustainable and 1.3x must not be.
    assert!(probe(max), "rate {max} should be sustainable");
    assert!(!probe(max * 1.3), "rate {} should overload", max * 1.3);
}

#[test]
fn prompt_sustains_at_least_hash_rate_under_skew() {
    let max_rate = |tech: Technique| {
        prompt_engine::backpressure::max_sustainable_rate(
            |rate| {
                let mut eng = engine(40.0, tech);
                let mut src = prompt::workloads::datasets::synd(
                    RateProfile::Constant { rate },
                    3_000,
                    1.4,
                    9,
                );
                let res = eng.run(&mut src, 6);
                res.stable() && res.steady_state_mean(|b| b.w) <= 1.0
            },
            1_000.0,
            500_000.0,
            8,
        )
    };
    let prompt = max_rate(Technique::Prompt);
    let hash = max_rate(Technique::Hash);
    let time_based = max_rate(Technique::TimeBased);
    assert!(
        prompt >= hash,
        "Prompt {prompt} should sustain ≥ hash {hash} under z=1.4"
    );
    assert!(
        prompt >= time_based,
        "Prompt {prompt} should sustain ≥ time-based {time_based}"
    );
}

#[test]
fn elasticity_follows_a_load_wave() {
    let mut cfg = EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 4,
        cluster: Cluster::new(16, 4),
        cost: CostModel::default().scaled(20.0),
        backpressure_queue: f64::INFINITY,
        ..EngineConfig::default()
    };
    cfg.elasticity = Some(ScalerConfig {
        d: 2,
        min_tasks: 2,
        max_tasks: 64,
        ..ScalerConfig::default()
    });
    let mut eng = StreamingEngine::new(
        cfg,
        Technique::Prompt,
        3,
        Job::identity("count", ReduceOp::Count),
    );
    let mut src = StreamGenerator::new(
        RateProfile::Step {
            low: 20_000.0,
            high: 90_000.0,
            period: Duration::from_secs(60),
            duty: 0.5,
        },
        KeyModel::Static(Box::new(prompt::workloads::keydist::ZipfKeys::new(
            3_000, 0.8,
        ))),
        ValueModel::Unit,
        3,
    );
    let res = eng.run(&mut src, 60);
    let outs = res.scale_events.iter().filter(|(_, a)| a.out).count();
    let ins = res.scale_events.iter().filter(|(_, a)| !a.out).count();
    assert!(outs >= 1, "high phase must trigger scale-out");
    assert!(ins >= 1, "low phase must trigger scale-in");
    // Peak parallelism during the high phase exceeds the low-phase floor.
    let peak = res.batches.iter().map(|b| b.map_tasks).max().unwrap();
    let last = res.batches.last().unwrap().map_tasks;
    assert!(peak > 4, "never grew: peak {peak}");
    assert!(last < peak, "never shrank back: last {last} peak {peak}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scaler never leaves its configured bounds and never acts during
    /// a grace period, for arbitrary observation streams.
    #[test]
    fn scaler_respects_bounds_on_arbitrary_inputs(
        ws in proptest::collection::vec(0.0f64..3.0, 10..80),
        d in 1usize..4,
    ) {
        let cfg = ScalerConfig { d, min_tasks: 2, max_tasks: 10, ..ScalerConfig::default() };
        let mut scaler = AutoScaler::new(cfg, 5, 5);
        let mut last_action_at: Option<usize> = None;
        for (i, w) in ws.iter().enumerate() {
            let action = scaler.observe(Observation {
                w: *w,
                n_tuples: (1000.0 * (1.0 + w)) as u64,
                n_keys: (100.0 * (1.0 + w)) as u64,
            });
            prop_assert!((2..=10).contains(&scaler.map_tasks()));
            prop_assert!((2..=10).contains(&scaler.reduce_tasks()));
            if let Some(a) = action {
                prop_assert!(a.map_tasks == scaler.map_tasks());
                if let Some(prev) = last_action_at {
                    prop_assert!(i - prev > d, "action at {i} inside grace after {prev}");
                }
                last_action_at = Some(i);
            }
        }
    }
}
