//! Property-based invariants of every batching-phase partitioner, spanning
//! `prompt-core` + `prompt-workloads`: whatever the input distribution,
//! partitioning must conserve the batch exactly and the structural
//! guarantees of each technique must hold.

use proptest::prelude::*;

use prompt::prelude::*;
use prompt_core::hash::KeyMap;

/// Build a micro-batch from a per-key count spec, interleaving arrivals.
fn batch_from_spec(spec: &[(u64, usize)]) -> MicroBatch {
    let total: usize = spec.iter().map(|&(_, c)| c).sum();
    let interval = Interval::new(Time::ZERO, Time::from_secs(1));
    let mut remaining: Vec<(u64, usize)> = spec.to_vec();
    let mut tuples = Vec::with_capacity(total);
    let step = interval.len().0 / (total.max(1) as u64 + 1);
    let mut ts = 0u64;
    while tuples.len() < total {
        for r in remaining.iter_mut() {
            if r.1 > 0 {
                r.1 -= 1;
                ts += step;
                tuples.push(Tuple::new(Time::from_micros(ts), Key(r.0), r.0 as f64));
            }
        }
    }
    MicroBatch::new(tuples, interval)
}

fn key_counts(batch: &MicroBatch) -> KeyMap<usize> {
    let mut m = KeyMap::default();
    for t in &batch.tuples {
        *m.entry(t.key).or_insert(0) += 1;
    }
    m
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u64, usize)>> {
    // Up to 60 keys, counts up to 400 with occasional heavy hitters.
    proptest::collection::vec((0u64..100, 1usize..400), 1..60).prop_map(|mut v| {
        v.dedup_by_key(|e| e.0);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_technique_conserves_every_key(spec in spec_strategy(), p in 1usize..12) {
        let batch = batch_from_spec(&spec);
        let want = key_counts(&batch);
        let mut techniques: Vec<Technique> = Technique::EVALUATION_SET.to_vec();
        techniques.push(Technique::DChoices(5));
        for tech in techniques {
            let plan = tech.build(3).partition(&batch, p);
            prop_assert_eq!(plan.n_blocks(), p);
            prop_assert_eq!(plan.total_tuples(), batch.len());
            // Per-key totals across fragments equal the input.
            let mut got: KeyMap<usize> = KeyMap::default();
            for block in &plan.blocks {
                let mut block_tuples: KeyMap<usize> = KeyMap::default();
                for t in &block.tuples {
                    *block_tuples.entry(t.key).or_insert(0) += 1;
                }
                // Fragment summaries agree with the payload.
                prop_assert_eq!(block.fragments.len(), block_tuples.len());
                for f in &block.fragments {
                    prop_assert_eq!(block_tuples.get(&f.key).copied(), Some(f.count));
                    *got.entry(f.key).or_insert(0) += f.count;
                }
            }
            prop_assert_eq!(&got, &want, "{:?}", tech);
        }
    }

    #[test]
    fn split_key_reference_table_is_exact(spec in spec_strategy(), p in 2usize..10) {
        let batch = batch_from_spec(&spec);
        for tech in Technique::EVALUATION_SET {
            let plan = tech.build(9).partition(&batch, p);
            let mut blocks_per_key: KeyMap<usize> = KeyMap::default();
            for block in &plan.blocks {
                for f in &block.fragments {
                    *blocks_per_key.entry(f.key).or_insert(0) += 1;
                }
            }
            for (key, n_blocks) in blocks_per_key {
                prop_assert_eq!(
                    plan.split_keys.contains(&key),
                    n_blocks > 1,
                    "{:?}: key {:?} in {} blocks", tech, key, n_blocks
                );
            }
        }
    }

    #[test]
    fn hash_never_splits_and_prompt_balances(spec in spec_strategy(), p in 2usize..10) {
        let batch = batch_from_spec(&spec);
        let hash_plan = Technique::Hash.build(1).partition(&batch, p);
        prop_assert!(hash_plan.split_keys.is_empty());

        let prompt_plan = Technique::PromptPostSort.build(1).partition(&batch, p);
        let p_size = batch.len().div_ceil(p);
        let keys = key_counts(&batch).len();
        // Block sizes are bounded by P_size plus one zigzag round of slack
        // (the snake draft on a sorted list can overshoot by at most the
        // largest below-S_cut key, i.e. S_cut) plus the residual tolerance.
        let s_cut = (p_size / (keys / p).max(1)).max(1);
        let cap = p_size + 2 * s_cut + p_size / 64 + 2;
        let oversize = prompt_plan.blocks.iter().filter(|b| b.size() > cap).count();
        prop_assert_eq!(oversize, 0, "blocks exceed capacity {}", cap);
    }

    #[test]
    fn pkg_splits_at_most_d_ways(spec in spec_strategy(), d in 2usize..6) {
        let batch = batch_from_spec(&spec);
        let plan = Technique::Pkg(d).build(5).partition(&batch, 8);
        let mut blocks_per_key: KeyMap<usize> = KeyMap::default();
        for block in &plan.blocks {
            for f in &block.fragments {
                *blocks_per_key.entry(f.key).or_insert(0) += 1;
            }
        }
        for (key, n) in blocks_per_key {
            prop_assert!(n <= d, "key {key:?} split {n} > {d} ways");
        }
    }

    #[test]
    fn metrics_are_finite_and_ksr_at_least_one(spec in spec_strategy(), p in 1usize..8) {
        use prompt_core::metrics::{bci, bsi, ksr, mpi, MpiWeights};
        let batch = batch_from_spec(&spec);
        for tech in Technique::EVALUATION_SET {
            let plan = tech.build(2).partition(&batch, p);
            let (s, c, k) = (bsi(&plan), bci(&plan), ksr(&plan));
            prop_assert!(s.is_finite() && s >= 0.0);
            prop_assert!(c.is_finite() && c >= 0.0);
            prop_assert!(k >= 1.0 - 1e-12 && k <= p as f64 + 1e-12);
            prop_assert!(mpi(&plan, MpiWeights::default()).is_finite());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn reduce_allocation_conserves_and_is_consistent(
        spec in spec_strategy(),
        p in 2usize..8,
        r in 1usize..8,
    ) {
        use prompt_core::reduce::{allocate_reduce, PromptReduceAllocator, HashReduceAssigner};
        let batch = batch_from_spec(&spec);
        for tech in [Technique::Prompt, Technique::Shuffle, Technique::Hash] {
            let plan = tech.build(4).partition(&batch, p);
            for assigner in [true, false] {
                let alloc = if assigner {
                    allocate_reduce(&plan, &mut PromptReduceAllocator::new(4), r)
                } else {
                    allocate_reduce(&plan, &mut HashReduceAssigner::new(4), r)
                };
                // allocate_reduce itself panics on split-key inconsistency;
                // here we check conservation.
                let total: usize = alloc.sizes().iter().sum();
                prop_assert_eq!(total, batch.len());
                let cardinality: usize = alloc.buckets.iter().map(|b| b.cardinality).sum();
                prop_assert_eq!(cardinality, key_counts(&batch).len());
            }
        }
    }
}

#[test]
fn zipf_stress_all_techniques_at_scale() {
    // One deterministic heavy case outside proptest: 200k tuples, z = 1.2.
    let mut source = prompt::workloads::datasets::synd(
        RateProfile::Constant { rate: 200_000.0 },
        30_000,
        1.2,
        77,
    );
    let interval = Interval::new(Time::ZERO, Time::from_secs(1));
    let mut tuples = Vec::new();
    source.fill(interval, &mut tuples);
    let batch = MicroBatch::new(tuples, interval);
    let want = key_counts(&batch);
    for tech in Technique::EVALUATION_SET {
        let plan = tech.build(1).partition(&batch, 32);
        assert_eq!(plan.total_tuples(), batch.len(), "{tech:?}");
        assert_eq!(plan.total_keys(), want.len(), "{tech:?}");
    }
}
