//! Differential safety net for the sharded parallel ingest & partitioning
//! pipeline, plus property-based validation of the B-BPFI heuristic.
//!
//! The parallel pipeline's contract (see
//! `prompt_core::buffering::ShardedAccumulator`) is checked differentially
//! against the serial reference over generated skewed streams:
//!
//! * sharded ingest produces the *exact* per-key frequencies of the serial
//!   Algorithm 1 accumulator, for any shard count;
//! * parallel ingest is bit-identical to serial ingest of the same sharded
//!   accumulator, for any thread count;
//! * one shard reproduces the legacy accumulator — and hence the legacy
//!   partition plan — exactly;
//! * parallel block materialization is bit-identical to serial.
//!
//! The B-BPFI plan itself is validated against its paper invariants (mass
//! conservation, bounded block overfill, imbalance no worse than hashing)
//! and, on small instances, against the exact branch-and-bound optimum in
//! `prompt_core::binpack`.

use std::collections::BTreeMap;

use prompt::prelude::*;
use prompt_core::binpack::{
    exact_min_fragments, fragmentation_minimization, prompt_heuristic, Instance,
};
use prompt_core::metrics;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Stream generators
// ---------------------------------------------------------------------------

const IV: Interval = Interval {
    start: Time(0),
    end: Time(1_000_000),
};

/// Merge a generated `(key, count)` list into a deterministic spec (repeated
/// keys summed, key-sorted).
fn merge_spec(raw: &[(u64, usize)]) -> Vec<(u64, usize)> {
    let mut m: BTreeMap<u64, usize> = BTreeMap::new();
    for &(k, c) in raw {
        *m.entry(k).or_insert(0) += c;
    }
    m.into_iter().collect()
}

/// Round-robin interleave the spec into an arrival-ordered stream, so hot
/// keys are spread over the whole batch the way a real stream delivers them.
fn interleaved_stream(spec: &[(u64, usize)]) -> Vec<Tuple> {
    let total: usize = spec.iter().map(|&(_, c)| c).sum();
    let mut remaining: Vec<(u64, usize)> = spec.to_vec();
    let mut tuples = Vec::with_capacity(total);
    let mut ts = 0u64;
    while tuples.len() < total {
        for r in remaining.iter_mut() {
            if r.1 > 0 {
                r.1 -= 1;
                ts += 1;
                tuples.push(Tuple::keyed(Time(ts), Key(r.0)));
            }
        }
    }
    tuples
}

/// A Zipf-flavoured spec: the i-th distinct generated key gets
/// `ceil(heaviest / rank)` tuples.
fn zipf_spec(keys: &[u64], heaviest: usize) -> Vec<(u64, usize)> {
    let distinct: Vec<u64> = {
        let mut seen = std::collections::BTreeSet::new();
        keys.iter().copied().filter(|&k| seen.insert(k)).collect()
    };
    distinct
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, heaviest.div_ceil(i + 1)))
        .collect()
}

fn zipf_keys() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(1u64..5_000, 4..80)
}

/// A stream whose hot key shifts mid-batch: the first half is dominated by
/// one key, the second half by another, over a shared background.
fn shifting_hot_stream(keys: &[u64], heavy: usize) -> Vec<Tuple> {
    let spec = merge_spec(&zipf_spec(keys, heavy.div_ceil(4)));
    let hot_a = keys[0];
    let hot_b = keys[keys.len() / 2].wrapping_add(7_919);
    let mut first = spec.clone();
    first.push((hot_a, heavy));
    let mut second = spec;
    second.push((hot_b, heavy));
    let mut tuples = interleaved_stream(&merge_spec(&first));
    tuples.extend(interleaved_stream(&merge_spec(&second)));
    // Re-stamp so timestamps stay monotone across the two halves.
    for (i, t) in tuples.iter_mut().enumerate() {
        t.ts = Time(i as u64 + 1);
    }
    tuples
}

fn acc_config(tuples: &[Tuple]) -> AccumulatorConfig {
    let keys: std::collections::BTreeSet<u64> = tuples.iter().map(|t| t.key.0).collect();
    AccumulatorConfig {
        budget: 8,
        est_tuples: tuples.len().max(1) as f64,
        avg_keys: keys.len().max(1) as f64,
    }
}

fn seal_serial(tuples: &[Tuple], cfg: AccumulatorConfig) -> SealedBatch {
    let mut acc = FrequencyAwareAccumulator::new(cfg, IV);
    for &t in tuples {
        acc.ingest(t);
    }
    acc.seal(IV)
}

fn seal_sharded(
    tuples: &[Tuple],
    cfg: AccumulatorConfig,
    shards: usize,
    threads: usize,
) -> SealedBatch {
    let mut acc = ShardedAccumulator::new(cfg, shards, IV);
    acc.par_ingest(tuples, threads);
    acc.seal(IV)
}

fn frequencies(batch: &SealedBatch) -> BTreeMap<u64, usize> {
    batch.groups.iter().map(|g| (g.key.0, g.count)).collect()
}

// ---------------------------------------------------------------------------
// Differential: sharded vs serial accumulator
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sharded accumulator reports the exact per-key frequencies of the
    /// serial Algorithm 1 accumulator for any shard count, on Zipf streams.
    #[test]
    fn sharded_frequencies_match_serial_exactly(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        shards in 2usize..10,
    ) {
        let tuples = interleaved_stream(&merge_spec(&zipf_spec(&keys, heaviest)));
        let cfg = acc_config(&tuples);
        let serial = seal_serial(&tuples, cfg);
        let sharded = seal_sharded(&tuples, cfg, shards, 1);
        prop_assert_eq!(frequencies(&sharded), frequencies(&serial));
        prop_assert_eq!(sharded.n_tuples, serial.n_tuples);
        prop_assert_eq!(sharded.n_keys(), serial.n_keys());
    }

    /// Same exact-frequency guarantee when the hot key shifts mid-batch —
    /// the adversarial case for any frequency-tracking shortcut.
    #[test]
    fn sharded_frequencies_survive_shifting_hot_keys(
        keys in zipf_keys(),
        heavy in 50usize..400,
        shards in 2usize..10,
        threads in 1usize..9,
    ) {
        let tuples = shifting_hot_stream(&keys, heavy);
        let cfg = acc_config(&tuples);
        let serial = seal_serial(&tuples, cfg);
        let sharded = seal_sharded(&tuples, cfg, shards, threads);
        prop_assert_eq!(frequencies(&sharded), frequencies(&serial));
    }

    /// Parallel ingest is bit-identical (groups, order, tuples) to serial
    /// ingest of the same sharded accumulator, for any thread count.
    #[test]
    fn parallel_ingest_is_bit_identical_to_serial(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        shards in 2usize..10,
        threads in 2usize..9,
    ) {
        let tuples = interleaved_stream(&merge_spec(&zipf_spec(&keys, heaviest)));
        let cfg = acc_config(&tuples);
        let serial = seal_sharded(&tuples, cfg, shards, 1);
        let parallel = seal_sharded(&tuples, cfg, shards, threads);
        prop_assert_eq!(parallel, serial);
    }

    /// With one shard the pipeline reproduces the legacy accumulator — and
    /// therefore the legacy partition plan — bit for bit.
    #[test]
    fn one_shard_reproduces_the_legacy_plan(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        threads in 1usize..9,
        p in 2usize..10,
    ) {
        let tuples = interleaved_stream(&merge_spec(&zipf_spec(&keys, heaviest)));
        let cfg = acc_config(&tuples);
        let legacy = seal_serial(&tuples, cfg);
        let sharded = seal_sharded(&tuples, cfg, 1, threads);
        prop_assert_eq!(&sharded, &legacy);
        prop_assert_eq!(
            PromptPartitioner::partition_sealed(&sharded, p),
            PromptPartitioner::partition_sealed(&legacy, p)
        );
    }

    /// After the exact re-sort (the ablation path), the sharded and serial
    /// pipelines agree on the *entire* sealed batch and partition plan for
    /// any shard count: the k-way merge loses nothing.
    #[test]
    fn exact_sorted_plans_agree_for_any_shard_count(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        shards in 2usize..10,
        p in 2usize..10,
    ) {
        let tuples = interleaved_stream(&merge_spec(&zipf_spec(&keys, heaviest)));
        let cfg = acc_config(&tuples);
        let mut serial = seal_serial(&tuples, cfg);
        let mut sharded = seal_sharded(&tuples, cfg, shards, 4);
        serial.sort_exact();
        sharded.sort_exact();
        prop_assert_eq!(&sharded, &serial);
        prop_assert_eq!(
            PromptPartitioner::partition_sealed(&sharded, p),
            PromptPartitioner::partition_sealed(&serial, p)
        );
    }

    /// Parallel block materialization yields the identical plan to the
    /// serial Algorithm 2 path for any thread count.
    #[test]
    fn parallel_materialization_is_bit_identical(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        p in 2usize..10,
        threads in 2usize..9,
    ) {
        let tuples = interleaved_stream(&merge_spec(&zipf_spec(&keys, heaviest)));
        let sealed = seal_serial(&tuples, acc_config(&tuples));
        prop_assert_eq!(
            PromptPartitioner::partition_sealed_par(&sealed, p, threads),
            PromptPartitioner::partition_sealed(&sealed, p)
        );
    }
}

// ---------------------------------------------------------------------------
// B-BPFI plan invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mass conservation across the S_cut split: every key's fragments sum
    /// to its input count, no key appears from nowhere, and the fragment
    /// summaries agree with the tuple payloads.
    #[test]
    fn plan_conserves_mass_across_the_split(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        p in 2usize..10,
    ) {
        let spec = merge_spec(&zipf_spec(&keys, heaviest));
        let tuples = interleaved_stream(&spec);
        let sealed = seal_serial(&tuples, acc_config(&tuples));
        let plan = PromptPartitioner::partition_sealed(&sealed, p);

        prop_assert_eq!(plan.n_blocks(), p);
        prop_assert_eq!(plan.total_tuples(), tuples.len());
        let mut got: BTreeMap<u64, usize> = BTreeMap::new();
        for b in &plan.blocks {
            let from_fragments: usize = b.fragments.iter().map(|f| f.count).sum();
            prop_assert_eq!(from_fragments, b.size(), "fragment summary out of sync");
            for f in &b.fragments {
                *got.entry(f.key.0).or_insert(0) += f.count;
            }
        }
        let want: BTreeMap<u64, usize> = spec.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// Bounded overfill: no block exceeds the bin capacity `P_size` by more
    /// than the residual tolerance slack plus two `S_cut` fragments (one
    /// from the heavy round-robin, one from the zigzag — the analysis in
    /// DESIGN.md §4). The residual phase itself never overfills past the
    /// tolerance, so this caps the worst block absolutely.
    #[test]
    fn no_block_exceeds_capacity_by_more_than_the_residual_bound(
        keys in zipf_keys(),
        heaviest in 20usize..300,
        p in 2usize..10,
    ) {
        let tuples = interleaved_stream(&merge_spec(&zipf_spec(&keys, heaviest)));
        let sealed = seal_serial(&tuples, acc_config(&tuples));
        let plan = PromptPartitioner::partition_sealed(&sealed, p);

        let n = sealed.n_tuples;
        let k = sealed.n_keys();
        let p_size = n.div_ceil(p);
        let s_cut = (p_size / (k / p).max(1)).max(1);
        let slack = (p_size as f64 * PromptPartitioner::DEFAULT_TOLERANCE) as usize + 1;
        let bound = p_size + slack + 2 * s_cut;
        for (i, b) in plan.blocks.iter().enumerate() {
            prop_assert!(
                b.size() <= bound,
                "block {} holds {} tuples, over the {} capacity bound \
                 (P_size {}, S_cut {}, slack {})",
                i, b.size(), bound, p_size, s_cut, slack
            );
        }
    }

    /// On skewed batches (a head key holding at least 3/p of the mass, as a
    /// Zipf stream always has), Prompt's size imbalance is no worse than
    /// hash partitioning's: hashing cannot split the head key, Prompt can.
    #[test]
    fn size_imbalance_is_no_worse_than_hashing(
        keys in zipf_keys(),
        p in 2usize..10,
        seed in 0u64..1_000,
    ) {
        let mut spec = merge_spec(&zipf_spec(&keys, 64));
        // Force a genuinely heavy head: 3 blocks' worth of one key, on top
        // of a batch at least 16 tuples per block.
        let background: usize = spec.iter().map(|&(_, c)| c).sum();
        let heavy = (3 * (background + 16 * p).div_ceil(p)).max(48);
        spec.push((5_001 + seed, heavy));
        let tuples = interleaved_stream(&merge_spec(&spec));
        let batch = MicroBatch::new(tuples, IV);

        let sealed = seal_serial(&batch.tuples, acc_config(&batch.tuples));
        let prompt_plan = PromptPartitioner::partition_sealed(&sealed, p);
        let hash_plan = HashPartitioner::new(seed).partition(&batch, p);
        prop_assert!(
            metrics::bsi(&prompt_plan) <= metrics::bsi(&hash_plan) + 1e-9,
            "prompt BSI {} vs hash BSI {}",
            metrics::bsi(&prompt_plan),
            metrics::bsi(&hash_plan)
        );
    }
}

// ---------------------------------------------------------------------------
// Differential: heuristics vs the exact branch-and-bound optimum
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On instances small enough for the exact solver (≤ 12 items), the
    /// shipping heuristics stay within a fixed additive gap of the optimal
    /// fragment count — and never beat it (the optimum really is one).
    #[test]
    fn heuristics_stay_within_fixed_gap_of_exact_optimum(
        items in proptest::collection::vec(1usize..40, 2..13),
        bins in 2usize..5,
    ) {
        let inst = Instance::balanced(items, bins);
        let Some(exact) = exact_min_fragments(&inst) else {
            // Balanced instances are always feasible; infeasibility here
            // would itself be a solver bug.
            return Err(TestCaseError::fail("balanced instance reported infeasible".into()));
        };
        exact.validate(&inst);

        let fmin = fragmentation_minimization(&inst);
        let prompt = prompt_heuristic(&inst);
        // fmin plays by the instance's strict capacity, so the optimum is a
        // true lower bound for it. Algorithm 2 carries its residual
        // tolerance (capacity `P_size(1 + 1/64) + 1`), which on tight
        // instances lets it legitimately undercut the strict-capacity
        // optimum — so only the upper gap is asserted for it.
        prop_assert!(exact.fragments() <= fmin.fragments());
        // Fragmentation minimisation carries a ≤ bins−1 extra-splits
        // guarantee; the full Algorithm 2 pays at most two fragments per bin
        // over the optimum (heavy round-robin + residual Best-Fit).
        prop_assert!(
            fmin.fragments() < exact.fragments() + inst.bins,
            "frag-min {} vs exact {} on {} bins",
            fmin.fragments(), exact.fragments(), inst.bins
        );
        prop_assert!(
            prompt.fragments() <= exact.fragments() + 2 * inst.bins,
            "prompt {} vs exact {} on {} bins",
            prompt.fragments(), exact.fragments(), inst.bins
        );
    }
}
