//! Satellite of the scenario wall: two concurrent tenant jobs on a shared
//! cluster must produce answers bit-identical to each job run alone through
//! the serial engine — across all three execution backends.
//!
//! The wall's cell runner embeds this check per cell; here it is exercised
//! directly at the integration tier with *mixed* techniques per tenant
//! (each cell uses one technique for all tenants) and with the distributed
//! backend in the loop.

use prompt_core::partitioner::Technique;
use prompt_core::types::Duration;
use prompt_engine::cluster::Cluster;
use prompt_engine::config::{Backend, EngineConfig};
use prompt_engine::driver::StreamingEngine;
use prompt_engine::job::{Job, ReduceOp};
use prompt_engine::tenancy::{MultiTenantEngine, TenantSpec};
use prompt_engine::window::WindowSpec;
use prompt_scenarios::matrix::Scenario;

const BATCHES: usize = 6;

fn cfg(backend: Backend) -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 8,
        reduce_tasks: 8,
        cluster: Cluster::new(1, 8),
        backend,
        ..EngineConfig::default()
    }
}

fn window() -> WindowSpec {
    WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1))
}

/// Two tenants with different techniques, seeds and scenario streams on a
/// shared cluster; each must match its solo serial oracle bit-for-bit.
fn assert_shared_matches_solo(backend: Backend) {
    let tenants = [
        ("zipf1.0-sin-64k", Technique::Prompt, 11u64),
        ("hotchurn-bursty-1k", Technique::Hash, 22u64),
    ];
    let specs: Vec<TenantSpec> = tenants
        .iter()
        .map(|(name, tech, seed)| {
            TenantSpec::new(
                format!("tenant-{tech:?}"),
                *tech,
                *seed,
                Job::identity(*name, ReduceOp::Count),
            )
            .with_window(window())
        })
        .collect();
    let mut sources: Vec<_> = tenants
        .iter()
        .map(|(name, _, seed)| {
            Scenario::by_name(name)
                .expect("scenario exists")
                .source(*seed)
        })
        .collect();
    let mut multi = MultiTenantEngine::new(cfg(backend), specs);
    let shared = multi.run(&mut sources, BATCHES);

    for (i, (name, tech, seed)) in tenants.iter().enumerate() {
        let mut solo_engine = StreamingEngine::new(
            cfg(Backend::InProcess),
            *tech,
            *seed,
            Job::identity(*name, ReduceOp::Count),
        )
        .with_window(window());
        let mut source = Scenario::by_name(name)
            .expect("scenario exists")
            .source(*seed);
        let solo = solo_engine.run(&mut *source, BATCHES);
        let t = &shared.tenants[i];

        assert_eq!(t.batches.len(), solo.batches.len(), "{backend:?}/{name}");
        for (a, b) in t.batches.iter().zip(&solo.batches) {
            assert_eq!(a.n_tuples, b.n_tuples, "{backend:?}/{name} batch {}", a.seq);
            assert_eq!(a.n_keys, b.n_keys, "{backend:?}/{name} batch {}", a.seq);
            assert_eq!(
                a.plan_metrics, b.plan_metrics,
                "{backend:?}/{name} batch {}",
                a.seq
            );
        }
        assert_eq!(t.windows.len(), solo.windows.len(), "{backend:?}/{name}");
        assert!(
            !t.windows.is_empty(),
            "{backend:?}/{name}: windows must fire"
        );
        for (a, b) in t.windows.iter().zip(&solo.windows) {
            assert_eq!(a.aggregates.len(), b.aggregates.len(), "{backend:?}/{name}");
            for (k, v) in &a.aggregates {
                let bv = b.aggregates.get(k).expect("key present in solo run");
                assert_eq!(
                    v.to_bits(),
                    bv.to_bits(),
                    "{backend:?}/{name}: aggregate for {k:?} diverged"
                );
            }
        }
    }
}

#[test]
fn two_tenants_match_solo_oracles_in_process() {
    assert_shared_matches_solo(Backend::InProcess);
}

#[test]
fn two_tenants_match_solo_oracles_threaded() {
    assert_shared_matches_solo(Backend::Threaded { threads: 4 });
}

#[test]
fn two_tenants_match_solo_oracles_distributed() {
    assert_shared_matches_solo(Backend::Distributed {
        workers: 2,
        base_port: 0,
    });
}

/// The wall's own cell runner agrees with the direct comparison above: a
/// cell on the threaded backend scores bit-identical, and interference
/// (noisy neighbor) never changes answers.
#[test]
fn cell_runner_reports_bit_identity_under_interference() {
    use prompt_scenarios::harness::{run_cell, CellConfig};
    let scenario = Scenario::by_name("drift-const-64k").expect("scenario exists");
    let mut cell = CellConfig::new(scenario, Technique::Prompt);
    cell.backend = Backend::Threaded { threads: 4 };
    cell.noisy = true;
    cell.batches = 5;
    let out = run_cell(&cell);
    assert!(
        out.bit_identical,
        "noisy threaded cell diverged from oracle"
    );
    assert!(!out.backpressure, "cell unexpectedly tripped back-pressure");
}
