//! Determinism guarantees (identical seeds must reproduce identical runs —
//! the property every experiment in EXPERIMENTS.md relies on) and
//! property-based validation of the bin-packing substrate.

use prompt::prelude::*;
use prompt_core::binpack::{
    best_fit_decreasing, first_fit_decreasing, fragmentation_minimization, next_fit,
    prompt_heuristic, Instance,
};
use proptest::prelude::*;

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let run = || {
        let cfg = EngineConfig {
            batch_interval: Duration::from_secs(1),
            map_tasks: 8,
            reduce_tasks: 8,
            cluster: Cluster::new(2, 4),
            ..EngineConfig::default()
        };
        let mut engine = StreamingEngine::new(
            cfg,
            Technique::Prompt,
            123,
            Job::identity("count", ReduceOp::Count),
        )
        .with_window(WindowSpec::sliding(
            Duration::from_secs(3),
            Duration::from_secs(1),
        ));
        let mut source = prompt::workloads::datasets::synd(
            RateProfile::Sinusoidal {
                base: 20_000.0,
                amplitude: 8_000.0,
                period: Duration::from_secs(5),
            },
            5_000,
            1.1,
            123,
        );
        engine.run(&mut source, 8)
    };
    let a = run();
    let b = run();
    assert_eq!(a.batches.len(), b.batches.len());
    for (x, y) in a.batches.iter().zip(&b.batches) {
        assert_eq!(x.n_tuples, y.n_tuples);
        assert_eq!(x.n_keys, y.n_keys);
        assert_eq!(x.processing, y.processing);
        assert_eq!(x.latency, y.latency);
        assert_eq!(x.map_task_times, y.map_task_times);
        assert_eq!(x.reduce_task_times, y.reduce_task_times);
        assert_eq!(x.plan_metrics, y.plan_metrics);
    }
    for (wa, wb) in a.windows.iter().zip(&b.windows) {
        assert_eq!(wa.aggregates.len(), wb.aggregates.len());
        for (k, v) in &wa.aggregates {
            assert_eq!(wb.aggregates[k], *v);
        }
    }
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let mut source = prompt::workloads::datasets::tweets(
            RateProfile::Constant { rate: 10_000.0 },
            2_000,
            seed,
        );
        let interval = Interval::new(Time::ZERO, Time::from_secs(1));
        let mut tuples = Vec::new();
        source.fill(interval, &mut tuples);
        tuples
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(a.len(), b.len(), "rate is deterministic");
    assert!(
        a.iter().zip(&b).any(|(x, y)| x.key != y.key),
        "different seeds must sample different keys"
    );
}

fn items_strategy() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..200, 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every heuristic produces a valid assignment (exact coverage, no empty
    /// fragments, within bin count) on arbitrary feasible instances.
    #[test]
    fn binpack_heuristics_always_valid(items in items_strategy(), bins in 1usize..8) {
        let inst = Instance::balanced(items, bins);
        for (name, a) in [
            ("ffd", first_fit_decreasing(&inst)),
            ("bfd", best_fit_decreasing(&inst)),
            ("next_fit", next_fit(&inst)),
            ("frag_min", fragmentation_minimization(&inst)),
            ("prompt", prompt_heuristic(&inst)),
        ] {
            a.validate(&inst);
            // Fragment count is at least the item count (every item appears)
            // and at most items + capacity-driven splits.
            prop_assert!(a.fragments() >= inst.items.len(), "{name}");
            prop_assert!(
                a.fragments() <= inst.items.len() * inst.bins,
                "{name}: absurd fragmentation"
            );
        }
    }

    /// The fragmentation minimiser achieves its theoretical bound and no
    /// capacity-respecting heuristic beats it.
    #[test]
    fn fragmentation_minimizer_is_minimal(items in items_strategy(), bins in 1usize..8) {
        let inst = Instance::balanced(items, bins);
        let fmin = fragmentation_minimization(&inst);
        prop_assert!(fmin.fragments() < inst.items.len() + inst.bins);
        for a in [first_fit_decreasing(&inst), next_fit(&inst)] {
            prop_assert!(a.fragments() + inst.bins > fmin.fragments());
        }
    }

    /// FFD and BFD never exceed the per-bin capacity.
    #[test]
    fn capacity_respected(items in items_strategy(), bins in 1usize..8) {
        let inst = Instance::balanced(items, bins);
        for a in [first_fit_decreasing(&inst), best_fit_decreasing(&inst), next_fit(&inst)] {
            for &size in &a.sizes() {
                prop_assert!(size <= inst.capacity);
            }
        }
    }
}
