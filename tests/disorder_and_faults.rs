//! Integration tests for the engine's consistency machinery (§8): bounded
//! out-of-order delivery through the reordering receiver, and exactly-once
//! recovery from injected state loss — both must leave query answers
//! untouched.

use prompt::prelude::*;
use prompt_engine::recovery::FaultPlan;
use prompt_engine::reorder::ReorderingReceiver;
use prompt_workloads::jitter::JitterSource;

fn cfg() -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 4,
        cluster: Cluster::new(1, 4),
        ..EngineConfig::default()
    }
}

fn tweets(seed: u64) -> prompt_workloads::generator::StreamGenerator {
    prompt::workloads::datasets::tweets(RateProfile::Constant { rate: 4_000.0 }, 800, seed)
}

fn window_answers(result: &RunResult) -> Vec<Vec<(u64, f64)>> {
    result
        .windows
        .iter()
        .map(|w| {
            let mut v: Vec<(u64, f64)> = w.aggregates.iter().map(|(k, c)| (k.0, *c)).collect();
            v.sort_by_key(|a| a.0);
            v
        })
        .collect()
}

#[test]
fn bounded_disorder_does_not_change_answers() {
    let window = WindowSpec::sliding(Duration::from_secs(3), Duration::from_secs(1));
    // Reference: the in-order stream.
    let mut engine = StreamingEngine::new(
        cfg(),
        Technique::Prompt,
        1,
        Job::identity("count", ReduceOp::Count),
    )
    .with_window(window);
    let reference = engine.run(&mut tweets(9), 8);

    // Same stream, shuffled by up to 80 ms of delivery jitter, restored by
    // a receiver allowing 100 ms of delay.
    let mut engine = StreamingEngine::new(
        cfg(),
        Technique::Prompt,
        1,
        Job::identity("count", ReduceOp::Count),
    )
    .with_window(window);
    let mut receiver = ReorderingReceiver::new(
        JitterSource::new(tweets(9), Duration::from_millis(80), 4),
        Duration::from_millis(100),
    );
    let disordered = engine.run(&mut receiver, 8);

    assert_eq!(receiver.late_dropped(), 0, "jitter within the bound");
    assert_eq!(window_answers(&reference), window_answers(&disordered));
}

#[test]
fn unbounded_disorder_drops_only_the_stragglers() {
    // Jitter (400 ms) far exceeds the delay bound (50 ms): some tuples must
    // be dropped, and the total processed + dropped accounts for everything.
    let mut engine = StreamingEngine::new(
        cfg(),
        Technique::Prompt,
        1,
        Job::identity("count", ReduceOp::Count),
    );
    let mut receiver = ReorderingReceiver::new(
        JitterSource::new(tweets(13), Duration::from_millis(400), 4),
        Duration::from_millis(50),
    );
    let result = engine.run(&mut receiver, 6);
    let processed: usize = result.batches.iter().map(|b| b.n_tuples).sum();
    assert!(receiver.late_dropped() > 0, "expected beyond-bound drops");

    // Compare with what the plain stream would have delivered in 6 batches.
    let mut plain = tweets(13);
    let mut total = 0usize;
    let mut buf = Vec::new();
    for s in 0..6u64 {
        buf.clear();
        plain.fill(
            Interval::new(Time::from_secs(s), Time::from_secs(s + 1)),
            &mut buf,
        );
        total += buf.len();
    }
    // processed + dropped + still-buffered (events near the end whose
    // arrival window extends past the run) == total.
    assert!(
        processed + receiver.late_dropped() as usize <= total,
        "accounting must not overcount"
    );
    // The only unaccounted tuples are those still buffered at run end:
    // events whose arrival window extends past the final seal, bounded by
    // one max_jitter's worth of the stream (400 ms × 4000 tuples/s).
    let max_buffered = (4_000.0 * 0.4) as usize + 120;
    assert!(
        processed + receiver.late_dropped() as usize >= total - max_buffered,
        "too many unaccounted tuples: processed {processed} dropped {}",
        receiver.late_dropped()
    );
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For ANY jitter bound within the receiver's delay bound, the engine
    /// sees exactly the in-order stream: same batch sizes, same key counts.
    #[test]
    fn any_bounded_jitter_is_transparent(jitter_ms in 0u64..100, seed in 0u64..1000) {
        let mut plain = tweets(seed);
        let mut receiver = ReorderingReceiver::new(
            JitterSource::new(tweets(seed), Duration::from_millis(jitter_ms), seed ^ 7),
            Duration::from_millis(100),
        );
        for s in 0..5u64 {
            let interval = Interval::new(Time::from_secs(s), Time::from_secs(s + 1));
            let mut want = Vec::new();
            plain.fill(interval, &mut want);
            let mut got = Vec::new();
            receiver.fill(interval, &mut got);
            prop_assert_eq!(got.len(), want.len(), "batch {} size", s);
            // Same multiset: sort both by (ts, key) and compare.
            want.sort_by_key(|t| (t.ts, t.key.0));
            got.sort_by_key(|t| (t.ts, t.key.0));
            prop_assert!(want.iter().zip(&got).all(|(a, b)| a == b), "batch {}", s);
        }
        prop_assert_eq!(receiver.late_dropped(), 0);
    }
}

#[test]
fn recovery_under_disorder_still_exactly_once() {
    // Combine both §8 mechanisms: jittered delivery AND injected state loss.
    let window = WindowSpec::sliding(Duration::from_secs(2), Duration::from_secs(1));
    let run = |faults: FaultPlan| {
        let mut engine = StreamingEngine::new(
            cfg(),
            Technique::Prompt,
            1,
            Job::identity("count", ReduceOp::Count),
        )
        .with_window(window)
        .with_fault_tolerance(2, faults);
        let mut receiver = ReorderingReceiver::new(
            JitterSource::new(tweets(21), Duration::from_millis(60), 8),
            Duration::from_millis(80),
        );
        engine.run(&mut receiver, 8)
    };
    let clean = run(FaultPlan::none());
    let faulty = run(FaultPlan::none().lose_once(1).lose_once(4));
    assert_eq!(faulty.recoveries, 2);
    assert_eq!(window_answers(&clean), window_answers(&faulty));
}
