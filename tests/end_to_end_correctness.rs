//! End-to-end correctness across crates: the choice of partitioning
//! technique must never change a query's answer, windows with inverse
//! Reduce must equal brute-force recomputation, and the real threaded
//! backend must agree with the simulated one.

use prompt::prelude::*;
use prompt_core::hash::KeyMap;
use prompt_queries::{all_queries, debs_q1, word_count};

fn run_query(
    query: &prompt_queries::Query,
    tech: Technique,
    rate: f64,
    cardinality: u64,
    batches: usize,
) -> Vec<KeyMap<f64>> {
    let cfg = EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 6,
        reduce_tasks: 5,
        cluster: Cluster::new(2, 4),
        ..EngineConfig::default()
    };
    let mut engine =
        StreamingEngine::new(cfg, tech, 21, query.job.clone()).with_window(query.window);
    let mut source = query.source_with_cardinality(RateProfile::Constant { rate }, cardinality, 21);
    let result = engine.run(source.as_mut(), batches);
    result.windows.into_iter().map(|w| w.aggregates).collect()
}

fn assert_same_aggregates(a: &KeyMap<f64>, b: &KeyMap<f64>, ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: key-set size");
    for (k, va) in a {
        let vb = b.get(k).unwrap_or_else(|| panic!("{ctx}: missing {k:?}"));
        assert!(
            (va - vb).abs() < 1e-6 * va.abs().max(1.0),
            "{ctx}: {k:?} {va} vs {vb}"
        );
    }
}

#[test]
fn every_query_gives_identical_answers_under_every_technique() {
    for query in all_queries() {
        let query = query.scale_window(600); // laptop-scale geometry
        let reference = run_query(&query, Technique::Hash, 4_000.0, 800, 8);
        assert!(!reference.is_empty(), "{}: no windows", query.name);
        let mut techniques: Vec<Technique> = Technique::EVALUATION_SET.to_vec();
        techniques.push(Technique::DChoices(5));
        techniques.push(Technique::PromptPostSort);
        for tech in techniques {
            let got = run_query(&query, tech, 4_000.0, 800, 8);
            assert_eq!(got.len(), reference.len(), "{}: window count", query.name);
            for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_same_aggregates(a, b, &format!("{} window {i} ({tech:?})", query.name));
            }
        }
    }
}

#[test]
fn sliding_window_equals_batch_recomputation() {
    // Drive the engine and independently recompute each window from raw
    // batch outputs.
    let query = word_count().scale_window(6); // 5 s window, 1.67 s → 2 s slide
    let cfg = EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 4,
        cluster: Cluster::new(1, 4),
        ..EngineConfig::default()
    };
    let (len_batches, _) = query.window.in_batches(Duration::from_secs(1));

    // First run: record per-batch outputs with a window of exactly 1 batch.
    let mut engine = StreamingEngine::new(cfg.clone(), Technique::Prompt, 5, query.job.clone())
        .with_window(WindowSpec::tumbling(Duration::from_secs(1)));
    let mut source = query.source_with_cardinality(RateProfile::Constant { rate: 3_000.0 }, 500, 5);
    let per_batch = engine.run(source.as_mut(), 12);
    let batch_outputs: Vec<KeyMap<f64>> = per_batch
        .windows
        .into_iter()
        .map(|w| w.aggregates)
        .collect();
    assert_eq!(batch_outputs.len(), 12);

    // Second run: the real sliding window.
    let mut engine = StreamingEngine::new(cfg, Technique::Prompt, 5, query.job.clone())
        .with_window(query.window);
    let mut source = query.source_with_cardinality(RateProfile::Constant { rate: 3_000.0 }, 500, 5);
    let slid = engine.run(source.as_mut(), 12);

    for w in &slid.windows {
        let end = w.last_batch_seq as usize;
        let start = (end + 1).saturating_sub(len_batches);
        let mut expect: KeyMap<f64> = KeyMap::default();
        for out in &batch_outputs[start..=end] {
            for (&k, &v) in out {
                *expect.entry(k).or_insert(0.0) += v;
            }
        }
        assert_same_aggregates(&expect, &w.aggregates, &format!("window @{end}"));
    }
}

#[test]
fn threaded_backend_matches_simulated_backend() {
    use prompt_engine::stage::execute_batch;
    let query = debs_q1();
    let mut source =
        query.source_with_cardinality(RateProfile::Constant { rate: 50_000.0 }, 5_000, 31);
    let interval = Interval::new(Time::ZERO, Time::from_secs(1));
    let mut tuples = Vec::new();
    source.fill(interval, &mut tuples);
    let batch = MicroBatch::new(tuples, interval);

    for tech in [Technique::Prompt, Technique::Shuffle] {
        let plan = tech.build(13).partition(&batch, 8);
        let (sim, _) = execute_batch(
            &plan,
            &query.job,
            &mut PromptReduceAllocator::new(13),
            4,
            &CostModel::default(),
            &Cluster::new(1, 4),
        );
        let (thr, _) = ThreadedExecutor::new(4).execute(
            &plan,
            &query.job,
            &mut PromptReduceAllocator::new(13),
            4,
        );
        assert_same_aggregates(&sim.aggregates, &thr.aggregates, &format!("{tech:?}"));
    }
}

#[test]
fn latency_accounting_is_consistent() {
    let cfg = EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 4,
        reduce_tasks: 4,
        cluster: Cluster::new(1, 4),
        ..EngineConfig::default()
    };
    let query = word_count().scale_window(10);
    let mut engine = StreamingEngine::new(cfg, Technique::Prompt, 3, query.job.clone());
    let mut source =
        query.source_with_cardinality(RateProfile::Constant { rate: 5_000.0 }, 1_000, 3);
    let res = engine.run(source.as_mut(), 6);
    for b in &res.batches {
        // End-to-end latency decomposition (§1).
        assert_eq!(
            b.latency,
            Duration::from_secs(1) + b.queue_delay + b.processing,
            "batch {}",
            b.seq
        );
        // Processing = visible overhead + map stage + reduce stage.
        assert_eq!(
            b.processing,
            b.visible_overhead + b.map_stage + b.reduce_stage,
            "batch {}",
            b.seq
        );
        // Eqn. 1: stage times equal the max task times (tasks ≤ slots here).
        assert_eq!(
            b.map_stage,
            *b.map_task_times.iter().max().expect("map tasks"),
            "batch {}",
            b.seq
        );
        assert_eq!(
            b.reduce_stage,
            *b.reduce_task_times.iter().max().expect("reduce tasks"),
            "batch {}",
            b.seq
        );
    }
}
