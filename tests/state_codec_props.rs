//! Property tests for the `prompt-state` snapshot/changelog codec.
//!
//! Stores built from arbitrary push sequences must round-trip bit-exactly
//! through the snapshot codec (and keep evolving identically afterwards),
//! deltas must round-trip through the changelog codec, and every malformed
//! checkpoint frame (truncated at any byte, wrong magic, wrong version,
//! unknown record kind, oversized length, flipped bit) must be rejected
//! with a typed error — never a panic or a garbage decode. These run in
//! the fast root tier, mirroring `wire_codec_props.rs`; the deterministic
//! exemplar tests live next to the codec itself.

use proptest::collection::vec;
use proptest::prelude::*;

use prompt_core::bytes::{ByteReader, ByteWriter};
use prompt_core::hash::KeyMap;
use prompt_core::types::{Duration, Key};
use prompt_engine::job::ReduceOp;
use prompt_engine::stage::BatchOutput;
use prompt_engine::state::{
    decode_frame, encode_frame, frame_kind, get_delta, get_shard, get_store, put_delta, put_shard,
    put_store, CheckpointError, KeyedStateStore, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
    FRAME_HEADER_LEN, FRAME_TRAILER_LEN, MAX_FRAME_PAYLOAD,
};
use prompt_engine::window::WindowSpec;

/// Finite values only: the NaN != NaN equality hole would fail comparisons
/// the codec is not responsible for. Bit-exactness of what is stored is
/// checked via `to_bits`.
fn value() -> impl Strategy<Value = f64> {
    -1.0e12f64..1.0e12
}

/// A sequence of batch outputs: per-batch `(key, value)` entries.
fn batches() -> impl Strategy<Value = Vec<Vec<(u64, f64)>>> {
    vec(vec((0u64..200, value()), 0..25), 1..12)
}

fn output(entries: &[(u64, f64)]) -> BatchOutput {
    let mut aggregates = KeyMap::default();
    for &(k, v) in entries {
        aggregates.insert(Key(k), v);
    }
    BatchOutput { aggregates }
}

/// Build a store by pushing every batch, at geometry derived from the
/// inputs (window of `len` batches sliding by `slide`).
fn build_store(
    op: ReduceOp,
    r: usize,
    len: u64,
    slide: u64,
    inputs: &[Vec<(u64, f64)>],
) -> KeyedStateStore {
    let spec = WindowSpec::sliding(Duration::from_secs(len), Duration::from_secs(slide));
    let mut store = KeyedStateStore::new(spec, Duration::from_secs(1), op, r);
    for entries in inputs {
        store.push(&output(entries));
    }
    store
}

fn encode_store(store: &KeyedStateStore) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_store(&mut w, store);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn store_snapshot_round_trips_for_every_op(
        op_code in 0u8..4,
        r in 1usize..7,
        len in 1u64..6,
        slide_pick in any::<u64>(),
        inputs in batches(),
    ) {
        let op = ReduceOp::from_wire_code(op_code).unwrap();
        let slide = slide_pick % len + 1;
        let store = build_store(op, r, len, slide, &inputs);
        let bytes = encode_store(&store);
        prop_assert_eq!(bytes.len(), store.encoded_len());
        let mut rd = ByteReader::new(&bytes);
        let back = get_store(&mut rd).unwrap();
        rd.expect_empty().unwrap();
        prop_assert_eq!(back.seq(), store.seq());
        prop_assert_eq!(back.shard_count(), store.shard_count());
        prop_assert_eq!(back.op(), store.op());
        // Canonical encoding: re-encoding reproduces the exact bytes.
        prop_assert_eq!(encode_store(&back), bytes);
        // The decoded aggregate state is bit-identical.
        let a = store.current();
        let b = back.current();
        prop_assert_eq!(a.len(), b.len());
        for (k, v) in &a {
            prop_assert_eq!(v.to_bits(), b[k].to_bits(), "{:?} key {:?}", op, k);
        }
        let sa = store.session_counts();
        let sb = back.session_counts();
        prop_assert_eq!(sa.len(), sb.len());
        for (k, v) in &sa {
            prop_assert_eq!(*v, sb[k]);
        }
    }

    #[test]
    fn restored_store_evolves_identically(
        r in 1usize..5,
        inputs in batches(),
        extra in vec((0u64..200, value()), 0..25),
    ) {
        let mut live = build_store(ReduceOp::Sum, r, 3, 1, &inputs);
        let bytes = encode_store(&live);
        let mut rd = ByteReader::new(&bytes);
        let mut back = get_store(&mut rd).unwrap();
        let next = output(&extra);
        let a = live.push(&next);
        let b = back.push(&next);
        prop_assert_eq!(a.is_some(), b.is_some());
        if let (Some(a), Some(b)) = (a, b) {
            prop_assert_eq!(a.last_batch_seq, b.last_batch_seq);
            prop_assert_eq!(a.aggregates.len(), b.aggregates.len());
            for (k, v) in &a.aggregates {
                prop_assert_eq!(v.to_bits(), b.aggregates[k].to_bits());
            }
        }
    }

    #[test]
    fn shard_codec_round_trips(
        r in 1usize..7,
        inputs in batches(),
    ) {
        let store = build_store(ReduceOp::Max, r, 4, 2, &inputs);
        for bucket in 0..store.shard_count() {
            let bytes = store.encode_shard(bucket);
            let mut rd = ByteReader::new(&bytes);
            let shard = get_shard(&mut rd).unwrap();
            rd.expect_empty().unwrap();
            // Canonical: re-encoding the decoded shard is byte-identical.
            let mut w = ByteWriter::new();
            put_shard(&mut w, &shard);
            prop_assert_eq!(w.into_bytes(), bytes, "bucket {}", bucket);
        }
    }

    #[test]
    fn delta_codec_round_trips(
        r in 1usize..7,
        inputs in batches(),
    ) {
        let spec = WindowSpec::sliding(Duration::from_secs(4), Duration::from_secs(1));
        let mut store = KeyedStateStore::new(spec, Duration::from_secs(1), ReduceOp::Sum, r);
        for entries in &inputs {
            let (_, delta) = store.push_with_delta(&output(entries));
            let mut w = ByteWriter::new();
            put_delta(&mut w, &delta);
            let bytes = w.into_bytes();
            let mut rd = ByteReader::new(&bytes);
            let back = get_delta(&mut rd).unwrap();
            rd.expect_empty().unwrap();
            prop_assert_eq!(back, delta);
        }
    }

    #[test]
    fn frame_round_trips_every_kind(
        kind_pick in 0usize..3,
        payload in vec(any::<u8>(), 0..300),
    ) {
        let kind = [frame_kind::SNAPSHOT, frame_kind::DELTA, frame_kind::MANIFEST][kind_pick];
        let frame = encode_frame(kind, &payload);
        prop_assert_eq!(
            frame.len(),
            FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN
        );
        let (k, body, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(body, &payload[..]);
        prop_assert_eq!(used, frame.len());
    }

    #[test]
    fn truncated_frames_are_rejected_at_any_cut(
        payload in vec(any::<u8>(), 1..200),
        cut_pick in any::<u16>(),
    ) {
        let frame = encode_frame(frame_kind::DELTA, &payload);
        let cut = cut_pick as usize % frame.len();
        match decode_frame(&frame[..cut]) {
            Err(CheckpointError::TruncatedFrame { needed, available }) => {
                prop_assert_eq!(available, cut);
                prop_assert!(needed > cut);
            }
            other => prop_assert!(false, "cut at {cut}: {other:?}"),
        }
    }

    #[test]
    fn corrupt_frames_are_rejected_with_typed_errors(
        payload in vec(any::<u8>(), 0..120),
        magic in any::<u32>(),
        version in any::<u8>(),
        kind in any::<u8>(),
        flip_pick in any::<u16>(),
    ) {
        let good = encode_frame(frame_kind::SNAPSHOT, &payload);

        // Wrong magic fails before anything else is interpreted.
        if magic != CHECKPOINT_MAGIC {
            let mut frame = good.clone();
            frame[..4].copy_from_slice(&magic.to_le_bytes());
            prop_assert!(matches!(
                decode_frame(&frame),
                Err(CheckpointError::BadMagic(m)) if m == magic
            ));
        }

        // A frame from another format version fails fast.
        if version != CHECKPOINT_VERSION {
            let mut frame = good.clone();
            frame[4] = version;
            prop_assert!(matches!(
                decode_frame(&frame),
                Err(CheckpointError::BadVersion(v)) if v == version
            ));
        }

        // Unknown record kinds are rejected even with a valid header.
        if !matches!(kind, 1..=3) {
            let mut frame = good.clone();
            frame[5] = kind;
            prop_assert!(matches!(
                decode_frame(&frame),
                Err(CheckpointError::BadRecord(k)) if k == kind
            ));
        }

        // A corrupt length field must not drive a giant allocation.
        let mut frame = good.clone();
        frame[6..10].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&frame),
            Err(CheckpointError::FrameTooLarge(_))
        ));

        // Any single flipped bit fails the CRC (or an earlier header check).
        let mut frame = good.clone();
        let pos = flip_pick as usize % frame.len();
        frame[pos] ^= 0x01;
        prop_assert!(decode_frame(&frame).is_err(), "flip at {pos} accepted");
    }
}

#[test]
fn frame_header_matches_layout() {
    // magic u32 + version u8 + kind u8 + payload-len u32, then a CRC u32.
    assert_eq!(FRAME_HEADER_LEN, 4 + 1 + 1 + 4);
    assert_eq!(FRAME_TRAILER_LEN, 4);
    let frame = encode_frame(frame_kind::MANIFEST, &[]);
    assert_eq!(frame.len(), FRAME_HEADER_LEN + FRAME_TRAILER_LEN);
}
