//! Differential safety net for the batch-lifecycle trace layer: every span
//! the recorder emits must reconcile exactly with the `BatchRecord` the
//! driver already reports, and the JSON-lines export must round-trip.
//!
//! Shard/thread counts for the parallel ingest pipeline come from
//! `PROMPT_INGEST_SHARDS` / `PROMPT_INGEST_THREADS` (defaults 4/2), so CI
//! can re-run the suite with a different parallel geometry.

use prompt_core::partitioner::Technique;
use prompt_core::types::Duration;
use prompt_engine::config::{EngineConfig, OverheadMode};
use prompt_engine::driver::StreamingEngine;
use prompt_engine::elasticity::ScalerConfig;
use prompt_engine::job::{Job, ReduceOp};
use prompt_engine::recovery::FaultPlan;
use prompt_engine::straggler::{Stage, StragglerPlan};
use prompt_engine::trace::{
    parse_jsonl, Counter, StageKind, TraceEvent, TraceLevel, TraceRecorder, PROCESSING_KINDS,
};
use prompt_workloads::datasets;
use prompt_workloads::rate::RateProfile;

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn traced_config() -> EngineConfig {
    EngineConfig {
        batch_interval: Duration::from_secs(1),
        map_tasks: 8,
        reduce_tasks: 8,
        // Fixed overhead larger than the early-release slack, so the
        // partition_visible span is non-zero and participates in the
        // reconciliation.
        overhead: OverheadMode::Fixed(Duration::from_millis(120)),
        ingest_shards: env_or("PROMPT_INGEST_SHARDS", 4),
        ingest_threads: env_or("PROMPT_INGEST_THREADS", 2),
        trace: TraceLevel::Full,
        ..EngineConfig::default()
    }
}

fn run_traced(
    cfg: EngineConfig,
    batches: usize,
) -> (prompt_engine::driver::RunResult, TraceRecorder) {
    let mut engine = StreamingEngine::new(
        cfg,
        Technique::Prompt,
        23,
        Job::identity("WordCount", ReduceOp::Count),
    )
    .with_stragglers(StragglerPlan::none().slow(2, Stage::Map, 0, 3.0))
    .with_fault_tolerance(2, FaultPlan::none().lose_once(3));
    let mut source = datasets::tweets(
        RateProfile::Sinusoidal {
            base: 30_000.0,
            amplitude: 12_000.0,
            period: Duration::from_millis(5_500),
        },
        2_000,
        23,
    );
    engine.run_traced(&mut source, batches)
}

/// The acceptance criterion of the observability layer: for every batch of a
/// run through the threaded ingest backend, the recorded processing spans
/// sum to `BatchRecord::processing` exactly, and the accumulate/queue spans
/// match the interval and queue delay.
#[test]
fn spans_reconcile_with_batch_records() {
    let (res, rec) = run_traced(traced_config(), 12);
    assert_eq!(res.batches.len(), 12);
    let events = rec.events();
    assert!(!events.is_empty());
    for b in &res.batches {
        let spans_of = |kind: StageKind| -> u64 {
            events
                .iter()
                .filter(|e| {
                    matches!(e, TraceEvent::Span { seq, kind: k, .. }
                        if *seq == b.seq && *k == kind)
                })
                .map(|e| e.span_us())
                .sum()
        };
        let processing: u64 = PROCESSING_KINDS.iter().map(|&k| spans_of(k)).sum();
        assert_eq!(
            processing, b.processing.0,
            "batch {}: processing spans must sum to BatchRecord::processing",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::MapStage),
            b.map_stage.0,
            "batch {}",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::QueueWait),
            b.queue_delay.0,
            "batch {}",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::Accumulate),
            Duration::from_secs(1).0,
            "batch {}: accumulate span is the batch interval",
            b.seq
        );
        assert_eq!(
            spans_of(StageKind::PartitionVisible),
            b.visible_overhead.0,
            "batch {}",
            b.seq
        );
    }
    // Counters agree with the run result.
    assert_eq!(rec.counter(Counter::Batches), 12);
    let tuples: usize = res.batches.iter().map(|b| b.n_tuples).sum();
    assert_eq!(rec.counter(Counter::Tuples), tuples as u64);
    assert_eq!(rec.counter(Counter::Recoveries), res.recoveries);
    assert_eq!(rec.counter(Counter::Stragglers), 1);
    // The recovery recompute shows up as its own processing span.
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::Span {
            seq: 3,
            kind: StageKind::Recovery,
            ..
        }
    )));
}

#[test]
fn jsonl_export_round_trips_and_summarizes() {
    let (res, rec) = run_traced(traced_config(), 8);
    let events = rec.events();
    let parsed = parse_jsonl(&rec.to_jsonl()).expect("export must parse back");
    assert_eq!(parsed, events, "JSONL round-trip must be lossless");

    let summary = rec.summary();
    let map = summary
        .stage(StageKind::MapStage)
        .expect("map stage summary");
    // One map-stage span per batch; the recovery recompute is folded into
    // its own Recovery span, so count and total match the records exactly.
    assert_eq!(map.count, 8);
    let total: u64 = res.batches.iter().map(|b| b.map_stage.0).sum();
    assert_eq!(map.total_us, total);
    assert!(map.p50_us > 0 && map.p95_us >= map.p50_us);
    assert_eq!(
        map.max_us,
        res.batches.iter().map(|b| b.map_stage.0).max().unwrap()
    );
}

#[test]
fn elasticity_and_zone_events_are_recorded() {
    let mut cfg = traced_config();
    cfg.elasticity = Some(ScalerConfig::default());
    let (res, rec) = run_traced(cfg, 20);
    assert_eq!(res.batches.len(), 20);
    let events = rec.events();
    // Zone events fire at least once (the first batch establishes a zone).
    assert!(events.iter().any(|e| matches!(e, TraceEvent::Zone { .. })));
    // Scale actions and the scaler's decision counters stay consistent.
    let scale_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Scale { .. }))
        .count() as u64;
    assert_eq!(
        scale_events,
        rec.counter(Counter::ScaleOut) + rec.counter(Counter::ScaleIn)
    );
    assert_eq!(rec.counter(Counter::GraceEntries), scale_events);
}

#[test]
fn off_level_records_nothing() {
    let mut cfg = traced_config();
    cfg.trace = TraceLevel::Off;
    let (res, rec) = run_traced(cfg, 6);
    assert_eq!(res.batches.len(), 6);
    assert!(rec.events().is_empty());
    assert_eq!(rec.counter(Counter::Batches), 0);
    assert!(rec.summary().stages.is_empty());
}

/// Traced and untraced runs are virtual-time identical: tracing observes the
/// lifecycle, it never perturbs it.
#[test]
fn tracing_does_not_change_the_run() {
    let mut cfg = traced_config();
    cfg.overhead = OverheadMode::Fixed(Duration::from_millis(120));
    let (traced, _) = run_traced(cfg.clone(), 10);
    cfg.trace = TraceLevel::Off;
    let (untraced, _) = run_traced(cfg, 10);
    assert_eq!(traced.batches.len(), untraced.batches.len());
    for (a, b) in traced.batches.iter().zip(&untraced.batches) {
        assert_eq!(a.processing, b.processing, "batch {}", a.seq);
        assert_eq!(a.latency, b.latency, "batch {}", a.seq);
        assert_eq!(a.plan_metrics, b.plan_metrics, "batch {}", a.seq);
    }
}
