//! Fast-tier loopback smoke test for the distributed runtime.
//!
//! Runs real batches through `DistributedRuntime` over loopback TCP with the
//! workers as in-process threads (no spawned binaries — this tier must work
//! from a bare `cargo test`), and checks the outputs and per-bucket stats
//! are bit-identical to the serial engine's. The multi-process differential
//! suite lives in `crates/engine/tests/distributed_smoke.rs`.

use prompt_core::batch::{MicroBatch, PartitionPlan};
use prompt_core::partitioner::{BufferingMode, Partitioner, PromptPartitioner};
use prompt_core::reduce::PromptReduceAllocator;
use prompt_core::types::{Interval, Key, Time, Tuple};
use prompt_engine::prelude::*;
use prompt_engine::stage;

/// A skewed workload: key 0 holds ~half the tuples, the rest follow a
/// round-robin tail — enough skew for split keys to appear.
fn skewed_batch(n: usize, keys: u64, seq: u64) -> MicroBatch {
    let interval = Interval::new(Time(1_000_000 * seq), Time(1_000_000 * (seq + 1)));
    let tuples: Vec<Tuple> = (0..n)
        .map(|i| {
            let key = if i % 2 == 0 {
                0
            } else {
                1 + (i as u64 % (keys - 1))
            };
            Tuple {
                ts: Time(interval.start.0 + 1 + i as u64),
                key: Key(key),
                value: (i % 13) as f64 - 3.0,
            }
        })
        .collect();
    MicroBatch::new(tuples, interval)
}

fn plan_of(batch: &MicroBatch, p: usize) -> PartitionPlan {
    PromptPartitioner::new(BufferingMode::FrequencyAware).partition(batch, p)
}

fn thread_opts(workers: usize) -> DistributedOptions {
    let mut opts = DistributedOptions::new(workers, 0);
    opts.launch = LaunchMode::Thread;
    opts
}

/// One in-process worker thread serves a batch over loopback TCP and its
/// output matches the serial engine bit-for-bit.
#[test]
fn single_worker_loopback_matches_serial() {
    let job = Job::identity("sum", ReduceOp::Sum);
    let spec = job.wire_spec().expect("identity job is wire-expressible");
    let (p, r) = (4, 3);
    let batch = skewed_batch(500, 19, 0);
    let plan = plan_of(&batch, p);

    let cost = CostModel::default();
    let cluster = Cluster::new(1, 4);
    let mut serial_assigner = PromptReduceAllocator::new(42);
    let (serial_out, serial_times) =
        execute_batch(&plan, &job, &mut serial_assigner, r, &cost, &cluster);

    let mut rt = DistributedRuntime::launch(thread_opts(1)).expect("launch one worker thread");
    let mut dist_assigner = PromptReduceAllocator::new(42);
    let (dist_out, stats) = rt
        .execute_batch(0, &plan, &spec, &mut dist_assigner, r, None)
        .expect("no faults scheduled");
    rt.shutdown();

    assert_eq!(
        dist_out.aggregates, serial_out.aggregates,
        "distributed aggregates must be bit-identical to serial"
    );
    // The virtual stage times recovered from the real run's bucket stats
    // equal the simulated ones exactly — same cost model, same counts.
    let dist_times = times_from_stats(&plan, &stats, &cost, &cluster);
    assert_eq!(dist_times, serial_times);
}

/// Several batches across two worker threads, with the stateful Algorithm 3
/// allocator carried across batches on both sides.
#[test]
fn two_workers_stay_identical_across_batches() {
    let job = Job::identity("count", ReduceOp::Count);
    let spec = job.wire_spec().expect("identity job is wire-expressible");
    let (p, r) = (6, 4);
    let cost = CostModel::default();
    let cluster = Cluster::new(2, 4);

    let mut rt = DistributedRuntime::launch(thread_opts(2)).expect("launch two worker threads");
    let mut serial_assigner = PromptReduceAllocator::new(7);
    let mut dist_assigner = PromptReduceAllocator::new(7);
    for seq in 0..4u64 {
        let batch = skewed_batch(400 + 37 * seq as usize, 13, seq);
        let plan = plan_of(&batch, p);
        let (serial_out, _) =
            stage::execute_batch(&plan, &job, &mut serial_assigner, r, &cost, &cluster);
        let (dist_out, stats) = rt
            .execute_batch(seq, &plan, &spec, &mut dist_assigner, r, None)
            .expect("no faults scheduled");
        assert_eq!(dist_out.aggregates, serial_out.aggregates, "batch {seq}");
        let tuples: usize = stats.iter().map(|s| s.tuples).sum();
        assert_eq!(tuples, batch.len(), "batch {seq} tuple conservation");
    }
    let net = rt.stats();
    assert!(net.frames_sent > 0 && net.bytes_received > 0);
    assert_eq!(net.workers_lost, 0);
    rt.shutdown();
}

/// Three workers, six batches, six buckets: every reduce task fans its
/// fetches out to two remote sources concurrently, and each (fetcher,
/// source) pair funnels all of them through one pooled connection — the
/// dialed-connections counter stays at most `workers × (workers − 1)` while
/// reuse dominates, and the v2 varint encoding strictly beats the v1
/// fixed-width layout on bytes-on-wire. Outputs stay bit-identical.
#[test]
fn pooled_connections_are_reused_across_fetches_and_batches() {
    let job = Job::identity("sum", ReduceOp::Sum);
    let spec = job.wire_spec().expect("identity job is wire-expressible");
    let (p, r) = (6, 6);
    let cost = CostModel::default();
    let cluster = Cluster::new(3, 4);

    let mut rt = DistributedRuntime::launch(thread_opts(3)).expect("launch three worker threads");
    let mut serial_assigner = PromptReduceAllocator::new(5);
    let mut dist_assigner = PromptReduceAllocator::new(5);
    for seq in 0..6u64 {
        let batch = skewed_batch(300 + 11 * seq as usize, 17, seq);
        let plan = plan_of(&batch, p);
        let (serial_out, _) =
            stage::execute_batch(&plan, &job, &mut serial_assigner, r, &cost, &cluster);
        let (dist_out, _) = rt
            .execute_batch(seq, &plan, &spec, &mut dist_assigner, r, None)
            .expect("no faults scheduled");
        assert_eq!(dist_out.aggregates, serial_out.aggregates, "batch {seq}");
    }
    let net = rt.stats();
    assert!(
        net.shuffle_conns_dialed <= 6,
        "3 workers need at most one dial per ordered pair, got {}",
        net.shuffle_conns_dialed
    );
    assert!(
        net.shuffle_conns_reused > net.shuffle_conns_dialed,
        "pool hits ({}) must dominate dials ({}) across 6 batches",
        net.shuffle_conns_reused,
        net.shuffle_conns_dialed
    );
    assert!(net.shuffle_bytes_wire > 0, "remote fetches happened");
    assert!(
        net.shuffle_bytes_wire < net.shuffle_bytes_raw,
        "v2 encoding ({}) must beat the v1 layout ({})",
        net.shuffle_bytes_wire,
        net.shuffle_bytes_raw
    );
    rt.shutdown();
}

/// The full engine driver on `Backend::Distributed` (thread launch via the
/// runtime's fallback is not used here — the engine resolves the worker
/// binary; this test forces thread mode through the env-independent path by
/// running the runtime directly) — covered instead at the engine tier.
/// Here: a scripted mid-run worker kill recovers and still matches serial.
#[test]
fn kill_mid_batch_recovers_and_matches_serial() {
    let job = Job::identity("sum", ReduceOp::Sum);
    let spec = job.wire_spec().expect("identity job is wire-expressible");
    let (p, r) = (4, 2);
    let cost = CostModel::default();
    let cluster = Cluster::new(1, 8);

    let mut rt = DistributedRuntime::launch(thread_opts(2)).expect("launch two worker threads");
    rt.set_fault_plan(NetFaultPlan::none().kill_after_map(1, 0));
    let mut serial_assigner = PromptReduceAllocator::new(11);
    let mut dist_assigner = PromptReduceAllocator::new(11);
    for seq in 0..3u64 {
        let batch = skewed_batch(300, 9, seq);
        let plan = plan_of(&batch, p);
        let (serial_out, _) =
            stage::execute_batch(&plan, &job, &mut serial_assigner, r, &cost, &cluster);
        let dist_out = match rt.execute_batch(seq, &plan, &spec, &mut dist_assigner, r, None) {
            Ok((out, _)) => out,
            Err(loss) => {
                assert_eq!(seq, 1, "only batch 1 schedules a kill");
                assert_eq!(loss.worker, 0);
                // The failed attempt made no assigner calls, so a plain
                // retry keeps both sides' allocator state in lock-step.
                let (out, _) = rt
                    .execute_batch(seq, &plan, &spec, &mut dist_assigner, r, None)
                    .expect("survivor completes the recompute");
                out
            }
        };
        assert_eq!(dist_out.aggregates, serial_out.aggregates, "batch {seq}");
    }
    assert_eq!(rt.stats().workers_lost, 1);
    rt.shutdown();
}
