//! End-to-end tests of the `prompt` binary itself: spawn the real
//! executable and assert on stdout/stderr/exit codes — the user's actual
//! surface.

use std::process::Command;

fn prompt(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_prompt"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_exits_zero_with_usage() {
    let out = prompt(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("USAGE"));
    assert!(text.contains("partition"));
}

#[test]
fn unknown_command_exits_two() {
    let out = prompt(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bad_option_value_exits_two_with_named_option() {
    let out = prompt(&["run", "--rate", "not-a-number"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--rate"), "error must name the option: {err}");
}

#[test]
fn partition_prints_all_techniques() {
    let out = prompt(&[
        "partition",
        "--dataset",
        "synd",
        "--skew",
        "1.2",
        "--rate",
        "5000",
        "--cardinality",
        "300",
        "--blocks",
        "4",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for label in [
        "Time-based",
        "Shuffle",
        "Hash",
        "PK2",
        "PK5",
        "cAM(4)",
        "Prompt",
        "D-Choices(5)",
    ] {
        assert!(text.contains(label), "missing {label} in:\n{text}");
    }
    assert!(text.contains("5000 tuples"));
}

#[test]
fn run_is_deterministic_across_invocations() {
    let args = [
        "run",
        "--technique",
        "prompt",
        "--rate",
        "3000",
        "--cardinality",
        "200",
        "--batches",
        "3",
        "--blocks",
        "4",
        "--reducers",
        "4",
    ];
    let a = prompt(&args);
    let b = prompt(&args);
    assert!(a.status.success());
    assert_eq!(
        String::from_utf8_lossy(&a.stdout),
        String::from_utf8_lossy(&b.stdout),
        "same seed must reproduce byte-identical output"
    );
}

#[test]
fn compare_reports_every_technique_stable_or_not() {
    let out = prompt(&[
        "compare",
        "--dataset",
        "gcm",
        "--rate",
        "2000",
        "--cardinality",
        "100",
        "--batches",
        "3",
        "--blocks",
        "4",
        "--reducers",
        "4",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let stable_lines = text.lines().filter(|l| l.contains("true")).count();
    assert_eq!(stable_lines, 7, "all 7 techniques stable at 2k/s:\n{text}");
}
