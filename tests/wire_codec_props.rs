//! Property tests for the `prompt-net` wire codec.
//!
//! Every message variant must round-trip bit-exactly through
//! `encode`/`decode` for arbitrary field values, and every malformed frame
//! (truncated at any byte, wrong magic, wrong version, unknown type,
//! oversized length) must be rejected with a typed error — never a panic or
//! a garbage decode. These run in the fast root tier; the deterministic
//! exemplar-based unit tests live next to the codec itself.

use proptest::collection::vec;
use proptest::prelude::*;

use prompt_core::batch::{DataBlock, KeyFragment};
use prompt_core::bytes::{self, ByteReader, ByteWriter, BytesSink};
use prompt_core::types::{Key, Time, Tuple};
use prompt_engine::job::{JobSpec, MapSpec, ReduceOp};
use prompt_engine::net::wire::{
    FetchStats, Message, ShuffleSegment, ShuffleSource, WireError, HEADER_LEN, MAGIC,
    PROTOCOL_VERSION,
};
use std::net::{Ipv4Addr, SocketAddrV4};

/// A finite payload value: full-precision mantissa exercise without the
/// NaN != NaN equality hole (bit-preservation of the sign/infinities is
/// covered by the codec's exemplar unit tests).
fn value() -> impl Strategy<Value = f64> {
    -1.0e12f64..1.0e12
}

fn round_trip(msg: Message) -> Result<(), proptest::test_runner::TestCaseError> {
    let frame = msg.encode();
    let back = Message::decode(&frame);
    prop_assert_eq!(back.as_ref(), Ok(&msg), "kind = {}", msg.kind());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fixed_size_variants_round_trip(
        worker in any::<u32>(),
        port in any::<u16>(),
        hb in any::<u32>(),
        seq in any::<u64>(),
        epoch in any::<u32>(),
        bucket in any::<u32>(),
    ) {
        for msg in [
            Message::Register { worker, shuffle_port: port },
            Message::RegisterAck { worker, heartbeat_ms: hb },
            Message::Heartbeat { worker },
            Message::BatchDone { seq },
            Message::Shutdown,
            Message::Fetch { seq, epoch, bucket },
        ] {
            round_trip(msg)?;
        }
    }

    #[test]
    fn map_task_round_trips(
        seq in any::<u64>(),
        epoch in any::<u32>(),
        block_id in any::<u32>(),
        reduce_code in 0u8..4,
        tuples in vec((any::<u64>(), any::<u64>(), value()), 0..40),
        fragments in vec((any::<u64>(), 0usize..10_000), 0..20),
    ) {
        let block = DataBlock {
            tuples: tuples
                .into_iter()
                .map(|(ts, key, value)| Tuple { ts: Time(ts), key: Key(key), value })
                .collect(),
            fragments: fragments
                .into_iter()
                .map(|(key, count)| KeyFragment { key: Key(key), count })
                .collect(),
        };
        round_trip(Message::MapTask {
            seq,
            epoch,
            block_id,
            job: JobSpec {
                map: MapSpec::Identity,
                reduce: ReduceOp::from_wire_code(reduce_code).unwrap(),
            },
            block,
        })?;
    }

    #[test]
    fn map_complete_and_shuffle_assign_round_trip(
        seq in any::<u64>(),
        epoch in any::<u32>(),
        block_id in any::<u32>(),
        clusters in vec((any::<u64>(), any::<u64>()), 0..60),
        assignment in vec(any::<u32>(), 0..60),
    ) {
        round_trip(Message::MapComplete {
            seq,
            epoch,
            block_id,
            clusters: clusters.into_iter().map(|(k, n)| (Key(k), n)).collect(),
        })?;
        round_trip(Message::ShuffleAssign { seq, epoch, block_id, assignment })?;
    }

    #[test]
    fn reduce_task_round_trips(
        seq in any::<u64>(),
        epoch in any::<u32>(),
        bucket in any::<u32>(),
        reduce_code in 0u8..4,
        sources in vec((any::<u32>(), any::<u32>(), any::<u16>()), 0..8),
    ) {
        round_trip(Message::ReduceTask {
            seq,
            epoch,
            bucket,
            reduce: ReduceOp::from_wire_code(reduce_code).unwrap(),
            sources: sources
                .into_iter()
                .map(|(worker, ip, port)| ShuffleSource {
                    worker,
                    addr: SocketAddrV4::new(Ipv4Addr::from(ip), port),
                })
                .collect(),
        })?;
    }

    #[test]
    fn reduce_complete_round_trips(
        seq in any::<u64>(),
        epoch in any::<u32>(),
        bucket in any::<u32>(),
        tuples in any::<u64>(),
        keys in any::<u64>(),
        fragments in any::<u64>(),
        aggregates in vec((any::<u64>(), value()), 0..60),
        dialed in any::<u64>(),
        reused in any::<u64>(),
        wait_us in any::<u64>(),
        bytes_wire in any::<u64>(),
        bytes_raw in any::<u64>(),
    ) {
        round_trip(Message::ReduceComplete {
            seq,
            epoch,
            bucket,
            tuples,
            keys,
            fragments,
            aggregates: aggregates.into_iter().map(|(k, v)| (Key(k), v)).collect(),
            net: FetchStats { dialed, reused, wait_us, bytes_wire, bytes_raw },
        })?;
    }

    #[test]
    fn fetch_reply_and_worker_error_round_trip(
        ready in any::<bool>(),
        segments in vec((any::<u32>(), vec((any::<u64>(), value(), any::<u64>()), 0..20)), 0..8),
        worker in any::<u32>(),
        seq in any::<u64>(),
        epoch in any::<u32>(),
        blame in any::<u32>(),
        detail in vec(any::<u8>(), 0..80),
    ) {
        round_trip(Message::FetchReply {
            ready,
            segments: segments
                .into_iter()
                .map(|(block_id, items)| ShuffleSegment {
                    block_id,
                    items: items.into_iter().map(|(k, v, n)| (Key(k), v, n)).collect(),
                })
                .collect(),
        })?;
        round_trip(Message::WorkerError {
            worker,
            seq,
            epoch,
            blame,
            detail: String::from_utf8_lossy(&detail).into_owned(),
        })?;
    }

    #[test]
    fn truncation_at_any_cut_is_rejected(
        seq in any::<u64>(),
        aggregates in vec((any::<u64>(), value()), 1..30),
        cut_pick in any::<u16>(),
    ) {
        let frame = Message::ReduceComplete {
            seq,
            epoch: 1,
            bucket: 0,
            tuples: 10,
            keys: aggregates.len() as u64,
            fragments: 10,
            aggregates: aggregates.into_iter().map(|(k, v)| (Key(k), v)).collect(),
            net: FetchStats::default(),
        }
        .encode();
        let cut = cut_pick as usize % frame.len();
        prop_assert!(
            Message::decode(&frame[..cut]).is_err(),
            "decoded from {cut}/{} bytes",
            frame.len()
        );
    }

    #[test]
    fn varints_round_trip_and_reject_truncation(values in vec(any::<u64>(), 1..50)) {
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let encoded = w.into_bytes();
        let mut r = ByteReader::new(&encoded);
        for &v in &values {
            prop_assert_eq!(r.get_varint().unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
        // Cutting the buffer anywhere strictly inside leaves a final varint
        // truncated: the last read must fail (earlier complete ones may
        // still succeed — that is the framing layer's job to prevent).
        for cut in 0..encoded.len() {
            let mut r = ByteReader::new(&encoded[..cut]);
            let mut decoded = 0usize;
            while r.get_varint().is_ok() {
                decoded += 1;
            }
            prop_assert!(
                decoded < values.len(),
                "all {} values decoded from {cut}/{} bytes",
                values.len(),
                encoded.len()
            );
        }
    }

    #[test]
    fn key_deltas_round_trip_for_arbitrary_sequences(keys in vec(any::<u64>(), 1..50)) {
        // Deltas are zigzag-encoded wrapping differences — a total
        // bijection on u64, so even unsorted key sequences round-trip.
        let mut w = ByteWriter::new();
        let mut prev = 0u64;
        for &k in &keys {
            bytes::put_key_delta(&mut w, prev, k);
            prev = k;
        }
        let encoded = w.into_bytes();
        let mut r = ByteReader::new(&encoded);
        let mut prev = 0u64;
        for &k in &keys {
            let got = bytes::get_key_delta(&mut r, prev).unwrap();
            prop_assert_eq!(got, k);
            prev = got;
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn corrupt_headers_are_rejected_with_typed_errors(
        worker in any::<u32>(),
        magic in any::<u32>(),
        version in any::<u8>(),
        // 1..=16 are live message types (16 = GroupPush, the group-scoped
        // state migration payload); anything above must be rejected.
        msg_type in 17u8..=255,
    ) {
        let good = Message::Heartbeat { worker }.encode();

        // Wrong magic: rejected before anything else is interpreted.
        let mut frame = good.clone();
        frame[..4].copy_from_slice(&magic.to_le_bytes());
        if magic != MAGIC {
            prop_assert_eq!(Message::decode(&frame), Err(WireError::BadMagic(magic)));
        }

        // Wrong version: a future/corrupt peer fails fast.
        let mut frame = good.clone();
        frame[4] = version;
        if version != PROTOCOL_VERSION {
            prop_assert_eq!(Message::decode(&frame), Err(WireError::BadVersion(version)));
        }

        // Unknown message type: the header is fine, the type byte is not.
        let mut frame = good;
        frame[5] = msg_type;
        prop_assert_eq!(Message::decode(&frame), Err(WireError::UnknownType(msg_type)));
    }
}

#[test]
fn header_len_matches_layout() {
    // magic u32 + version u8 + type u8 + len u32.
    assert_eq!(HEADER_LEN, 4 + 1 + 1 + 4);
    let frame = Message::Shutdown.encode();
    assert_eq!(frame.len(), HEADER_LEN, "shutdown has an empty payload");
}
