//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal timing harness with the API subset its benches use:
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function` / `bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark takes `sample_size` samples; a sample
//! times one invocation of the routine. The harness reports min / median /
//! mean and, when a [`Throughput`] was declared, median-based elements/s.
//! When invoked by `cargo test` (any `--test`-like argument present) every
//! benchmark runs exactly once as a smoke test.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per routine invocation, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (tuples, items) processed per invocation.
    Elements(u64),
    /// Bytes processed per invocation.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// How `iter_batched` amortises setup cost. The shim times the routine per
/// invocation either way, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup output; upstream batches many per sample.
    SmallInput,
    /// Large setup output; upstream runs one per sample.
    LargeInput,
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Time `routine`, called once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(routine());
            self.results.push(t0.elapsed());
        }
    }

    /// Time `routine` on a fresh `setup()` output per sample; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std_black_box(routine(input));
            self.results.push(t0.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Declare per-invocation work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut results = Vec::new();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            results: &mut results,
        };
        f(&mut b);
        self.report(&id, &results);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut results = Vec::new();
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            results: &mut results,
        };
        f(&mut b, input);
        self.report(&id, &results);
        self
    }

    /// End the group (upstream flushes reports here; the shim reports
    /// eagerly, so this is a no-op marker).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, results: &[Duration]) {
        if results.is_empty() {
            println!("{}/{}: no samples", self.name, id.id);
            return;
        }
        let mut sorted: Vec<Duration> = results.to_vec();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
                format!("  thrpt: {:>10.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
                format!(
                    "  thrpt: {:>8.1} MiB/s",
                    n as f64 / median.as_secs_f64() / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples){}",
            self.name,
            id.id,
            min,
            median,
            mean,
            sorted.len(),
            thrpt
        );
    }
}

/// The harness entry point handed to every benchmark function.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench targets with `--test`-style
        // arguments (or under the libtest flag set); run each routine once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 10,
            throughput: None,
        };
        group.bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("unit");
        group.sample_size(3).throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 5), &5usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(runs, 1, "test mode runs each routine once");
    }

    #[test]
    fn iter_batched_times_routine_only() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("batched");
        group.sample_size(2);
        let mut setups = 0usize;
        group.bench_function("b", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u64; 8]
                },
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(setups, 2, "one setup per sample");
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(1.5).id, "1.5");
    }
}
