//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small API subset it actually uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `random` / `random_range`. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic across platforms
//! and runs, which is what every experiment and test here relies on. Stream
//! values differ from upstream `rand`; nothing in the workspace pins them.

use std::ops::{Range, RangeInclusive};

/// Core of every random generator: a source of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from their "natural" domain by [`Rng::random`]
/// (`[0, 1)` for floats, the full domain for integers and bool).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`]
/// (including `&mut dyn RngCore`).
pub trait Rng: RngCore {
    /// A uniform value over the type's natural domain.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Fast, 256-bit state, deterministic everywhere.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(1i32..=50);
            assert!((1..=50).contains(&w));
            let f = rng.random_range(0.5f64..5.0);
            assert!((0.5..5.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn integer_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn dyn_rngcore_gets_rng_methods() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.random_range(0u64..10);
        assert!(v < 10);
        let f: f64 = dynr.random();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
