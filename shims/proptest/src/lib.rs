//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the API subset its property tests use: the [`proptest!`] macro (with the
//! `#![proptest_config(..)]` header), [`prop_assert!`]/[`prop_assert_eq!`]/
//! [`prop_assert_ne!`], range and tuple strategies, [`strategy::any`] for
//! primitive ints/bools, [`collection::vec`], and
//! [`strategy::Strategy::prop_map`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no input
//! shrinking**. Cases are generated from a seed derived deterministically from
//! the test name, so every run explores the same inputs and a failure report
//! prints the exact failing case index; re-running reproduces it.

pub mod strategy;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `size` (e.g. `1..60`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

pub mod test_runner {
    //! The minimal run-time machinery behind [`crate::proptest!`].

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// A failed property; produced by the `prop_assert*` macros.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Record a failure message.
        pub fn fail(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The deterministic generator driving case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from a test identifier: the same test always replays the
        /// same case sequence.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the name
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property over `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    //! The glob import used by test files.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Define deterministic property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)*), $(&$arg),*);
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "property '{}' failed at case {}/{}: {}\ninputs:{}",
                            stringify!($name), __case + 1, config.cases, e, __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the enclosing
/// case returns an error carrying the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}\n{}",
            stringify!($left), stringify!($right), l, format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.0f64..3.0).generate(&mut rng);
            assert!((0.0..3.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size_and_maps() {
        let strat = crate::collection::vec((0u64..100, 1usize..400), 1..60).prop_map(|mut v| {
            v.dedup_by_key(|e| e.0);
            v
        });
        let mut rng = TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 60);
            for &(k, c) in &v {
                assert!(k < 100 && (1..400).contains(&c));
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0u64..1000, 5..10);
        let a = strat.generate(&mut TestRng::deterministic("same"));
        let b = strat.generate(&mut TestRng::deterministic("same"));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, ys in crate::collection::vec(1usize..10, 1..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(ys.len(), ys.iter().map(|&y| y / y).sum::<usize>());
            prop_assert!(!ys.is_empty(), "generated {} elements", ys.len());
        }

        #[test]
        fn any_covers_the_full_domain(x in any::<u64>(), b in any::<bool>(), s in any::<i8>()) {
            // The values themselves are unconstrained; exercise the macros.
            prop_assert_ne!(u128::from(x) + 1, 0u128);
            prop_assert!(u8::from(b) <= 1);
            prop_assert!(i16::from(s) >= -128 && i16::from(s) <= 127);
        }
    }

    #[test]
    fn any_eventually_hits_extremes() {
        // With 4096 draws of a u8 the probability of missing any fixed value
        // is (255/256)^4096 ≈ 1e-7; deterministic seeding makes this stable.
        let mut rng = TestRng::deterministic("extremes");
        let mut seen = [false; 256];
        for _ in 0..4096 {
            seen[crate::strategy::any::<u8>().generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[255], "u8 extremes never generated");
    }

    #[test]
    #[should_panic(expected = "property 'failing_property' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn failing_property(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing_property();
    }
}
