//! Generation-only strategies: how [`crate::proptest!`] turns strategy
//! expressions into concrete values.

use std::ops::{Range, RangeInclusive};

use rand::{Rng, RngCore};

use crate::test_runner::TestRng;

/// A value generator. Unlike upstream proptest there is no shrinking: a
/// strategy is just a deterministic function of the test RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical full-domain strategy, selected via [`any`].
/// The shim covers the primitive integers and `bool` — enough for wire
/// fields — rather than upstream's blanket derive machinery.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one value uniformly from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`]: generates over the full domain of `T`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for FullRange<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for a primitive type: `any::<u64>()` replaces the
/// hand-rolled `0u64..u64::MAX` (which silently excludes the maximum).
pub fn any<T: Arbitrary>() -> FullRange<T> {
    FullRange(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Truncating a uniform u64 stays uniform for every integer
                // width ≤ 64 bits, signed or not.
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection length specification (`1..60`, `10..=80`, or a fixed `usize`).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Output of [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
